"""Whole-program rules (REP010–REP013): invariants no single file can show.

These are the cross-module counterparts of the per-file pack, run once per
analysis over the aggregated :class:`~repro.analysis.project.ProjectContext`:

* **REP010** — import-layering violations against the
  ``[tool.repro.analysis.layers]`` DAG in ``pyproject.toml``.
* **REP011** — delta-dispatch exhaustiveness: a function branching on
  :class:`~repro.core.session.PolicyDelta` variants via ``isinstance``/
  ``match`` must cover every registered variant or carry an explicit
  fallback (the PR 6 ``TypeCountChanged`` silent-no-op bug class).
* **REP012** — snapshot-field coverage: mutable ``self._*`` state assigned
  in :class:`~repro.scheduler.service.ClusterScheduler` must be captured by
  a :class:`~repro.scheduler.service.SchedulerSnapshot` field or declared
  soft state (reconstructible by replay).
* **REP013** — dead exports: ``__all__`` names never imported or referenced
  outside their defining module.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.project import ModuleSummary, ProjectContext
from repro.analysis.rules.base import ProjectRule, register

__all__ = [
    "DeadExportRule",
    "DeltaDispatchExhaustivenessRule",
    "ImportLayeringRule",
    "SnapshotFieldCoverageRule",
]


@register
class ImportLayeringRule(ProjectRule):
    """REP010: an import crossing the declared layer DAG upward or sideways.

    Each layer in ``[tool.repro.analysis.layers]`` lists the layers it may
    import from; an import whose source and target modules both map to
    declared layers must follow an allowed edge.  Modules outside every
    declared prefix (tests, benchmarks, fixtures) are unconstrained, and
    ``if TYPE_CHECKING:`` imports are exempt by default (annotation-only
    cycles do not exist at runtime).
    """

    code = "REP010"
    name = "import-layering"
    summary = "import violates the declared layer DAG"

    def check(self, project: ProjectContext) -> None:
        layers = self.config.layers
        if not layers:
            return
        ignore_type_checking = bool(self.option("ignore_type_checking", True))
        for summary in project.summaries:
            source_layer = self.config.layer_of(summary.module) if summary.module else None
            if source_layer is None:
                continue
            allowed = set(layers[source_layer].imports) | {source_layer}
            for record in summary.imports:
                if ignore_type_checking and record.type_checking:
                    continue
                target_layer = self.config.layer_of(record.target)
                if target_layer is None or target_layer in allowed:
                    continue
                permitted = ", ".join(sorted(allowed))
                self.report(
                    summary.rel_path,
                    record.line,
                    1,
                    f"layer `{source_layer}` may not import `{record.target}` "
                    f"(layer `{target_layer}`); allowed layers: {permitted}",
                )


@register
class DeltaDispatchExhaustivenessRule(ProjectRule):
    """REP011: a delta-type dispatch that silently drops registered variants.

    The delta stream is a closed union (``PolicyDelta``); any ``isinstance``
    elif-chain or ``match`` statement branching over two or more of its
    variants is a dispatch and must either test every registered variant or
    carry an explicit fallback (``else:`` / ``case _:``).  Without this, a
    newly registered delta class — exactly what happened when PR 6 added
    ``TypeCountChanged`` — is silently ignored by pre-existing dispatchers.
    """

    code = "REP011"
    name = "delta-dispatch-exhaustiveness"
    summary = "isinstance/match over delta types misses registered variants"

    _UNION = "repro.core.session.PolicyDelta"
    _MIN_BRANCHES = 2

    def check(self, project: ProjectContext) -> None:
        union_name = str(self.option("union", self._UNION))
        registry = project.union_members(union_name)
        if not registry:
            return
        registry_set = set(registry)
        min_branches = int(self.option("min_branches", self._MIN_BRANCHES))
        for summary in project.summaries:
            for site in summary.dispatches:
                tested = {project.resolve_symbol(name) for name in site.tested}
                matched = tested & registry_set
                if len(matched) < min_branches or site.has_fallback:
                    continue
                missing = sorted(
                    name.rsplit(".", 1)[-1] for name in registry_set - tested
                )
                if not missing:
                    continue
                self.report(
                    summary.rel_path,
                    site.line,
                    site.col + 1,
                    f"{site.kind} dispatch over {union_name.rsplit('.', 1)[-1]} "
                    f"variants in `{site.scope}` does not handle "
                    f"{', '.join(missing)}; cover every registered delta or "
                    "add an explicit fallback branch",
                )


@register
class SnapshotFieldCoverageRule(ProjectRule):
    """REP012: scheduler state invisible to the snapshot contract.

    Every ``self._*`` attribute assigned anywhere in the configured state
    class must be accounted for: captured under the matching snapshot field
    (``_busy_seconds`` → ``busy_seconds``), captured under a declared
    ``captured_as`` alias (``_rng`` → ``rng_state``), or listed as
    reconstructible soft state (``soft_state``).  State added to the
    scheduler without extending the snapshot is exactly the bug class that
    silently breaks restore determinism.
    """

    code = "REP012"
    name = "snapshot-field-coverage"
    summary = "scheduler state not covered by snapshot capture/restore"

    _STATE_CLASS = "repro.scheduler.service.ClusterScheduler"
    _SNAPSHOT_CLASS = "repro.scheduler.service.SchedulerSnapshot"

    @staticmethod
    def _snapshot_fields(project: ProjectContext, qualified: str) -> Optional[Set[str]]:
        found = project.find_class(qualified)
        if found is None:
            return None
        _, cls = found
        fields = set(cls.dataclass_fields)
        fields.update(attr for attr, _line in cls.self_attrs)
        return fields

    def check(self, project: ProjectContext) -> None:
        state_name = str(self.option("state_class", self._STATE_CLASS))
        snapshot_name = str(self.option("snapshot_class", self._SNAPSHOT_CLASS))
        state = project.find_class(state_name)
        snapshot_fields = self._snapshot_fields(project, snapshot_name)
        if state is None or snapshot_fields is None:
            return
        soft_state = {str(name) for name in self.option("soft_state", [])}
        captured_as_raw = self.option("captured_as", {})
        captured_as: Dict[str, str] = {
            str(key): str(value) for key, value in dict(captured_as_raw).items()
        }
        state_summary, state_class = state
        short_snapshot = snapshot_name.rsplit(".", 1)[-1]
        for attr, line in state_class.self_attrs:
            if not attr.startswith("_") or attr.startswith("__"):
                continue
            if attr.lstrip("_") in snapshot_fields:
                continue
            if attr in soft_state:
                continue
            alias = captured_as.get(attr)
            if alias is not None and alias in snapshot_fields:
                continue
            self.report(
                state_summary.rel_path,
                line,
                1,
                f"`self.{attr}` is scheduler state with no {short_snapshot} "
                f"coverage; capture it as `{attr.lstrip('_')}`, map it via "
                "`captured_as`, or declare it reconstructible in `soft_state`",
            )


@register
class DeadExportRule(ProjectRule):
    """REP013: a name in ``__all__`` that no other scanned module uses.

    An export is *used* when any other module from-imports it, references it
    through an attribute chain (``module.name``), star-imports its module, or
    when the name is itself a submodule.  Everything else is API surface that
    exists only in ``__all__`` — either delete the export (and make the
    definition private) or, for genuinely external entry points, list it in
    the rule's ``allow`` option.
    """

    code = "REP013"
    name = "dead-export"
    summary = "__all__ name never used outside its module"

    default_include = ("src/repro",)

    def check(self, project: ProjectContext) -> None:
        allow = {str(name) for name in self.option("allow", [])}
        for summary in project.summaries:
            if summary.dunder_all is None or not summary.module:
                continue
            dead: List[str] = []
            for name in summary.dunder_all:
                if f"{summary.module}.{name}" in allow:
                    continue
                if not project.is_name_used_externally(summary.module, name):
                    dead.append(name)
            for name in dead:
                self.report(
                    summary.rel_path,
                    summary.dunder_all_line,
                    1,
                    f"`{name}` is exported in __all__ but never imported or "
                    "referenced outside this module; drop the export or add "
                    f"`{summary.module}.{name}` to the REP013 allow list",
                )
