"""Rules guarding the solver/session mutation contract (REP001, REP007).

The warm-start architecture keeps a Python-side :class:`LinearProgram` and a
live HiGHS model in lockstep by replaying edits.  That contract has exactly
two failure modes this module lints for: a status-returning backend call whose
result nobody checks (the model silently diverges from the program — the
PR 6 ``addRows`` bug), and code outside the owning object reaching into the
``_highs``/``_program`` internals, mutating state the edit log never sees.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Set, Tuple

from repro.analysis.rules.base import Rule, register, scope_statements

__all__ = ["IgnoredSolverStatusRule", "PrivateInternalReachInRule"]

#: HiGHS methods returning a ``HighsStatus`` that must be checked.  Everything
#: here either mutates the model (a rejected batch desynchronises it) or runs
#: the solve itself.
_STATUS_METHODS = (
    "addCol",
    "addCols",
    "addRow",
    "addRows",
    "addVar",
    "addVars",
    "changeCoeff",
    "changeColBounds",
    "changeColCost",
    "changeColsBounds",
    "changeColsCost",
    "changeObjectiveOffset",
    "changeObjectiveSense",
    "changeRowBounds",
    "changeRowsBounds",
    "deleteCols",
    "deleteRows",
    "deleteVars",
    "passModel",
    "run",
    "setBasis",
    "setOptionValue",
    "setSolution",
)

#: Receiver-name fragments identifying a HiGHS handle (``highs.run()``,
#: ``self._highs.addRows(...)``); keeps ``subprocess.run()`` and friends out.
_RECEIVER_HINTS = ("highs",)


@register
class IgnoredSolverStatusRule(Rule):
    """REP001: the return status of a solver-backend call is ignored.

    Two shapes are flagged: a bare expression statement (the status is
    discarded outright) and an assignment to a name that is never read
    afterwards in the same scope (the PR 6 revert shape — ``status =
    highs.addRows(...)`` with the ``kError`` check deleted).
    """

    code = "REP001"
    name = "ignored-solver-status"
    summary = "return status of a solver-backend call is ignored"

    def _matches(self, call: ast.Call) -> str:
        if not isinstance(call.func, ast.Attribute):
            return ""
        methods = tuple(self.context.option(self.code, "methods", _STATUS_METHODS))
        if call.func.attr not in methods:
            return ""
        hints = tuple(self.context.option(self.code, "receivers", _RECEIVER_HINTS))
        tail = self.context.receiver_tail(call.func.value)
        if tail is None or not any(hint in tail.lower() for hint in hints):
            return ""
        return call.func.attr

    def _check_scope(self, scope: ast.AST) -> None:
        assigned: List[Tuple[ast.Assign, str, str]] = []
        for statement in scope_statements(scope):
            if isinstance(statement, ast.Expr) and isinstance(statement.value, ast.Call):
                method = self._matches(statement.value)
                if method:
                    self.report(
                        statement,
                        f"return status of `{method}(...)` is ignored; check it "
                        "against HighsStatus and raise SolverError on failure",
                    )
            elif isinstance(statement, ast.Assign) and isinstance(statement.value, ast.Call):
                if len(statement.targets) == 1 and isinstance(statement.targets[0], ast.Name):
                    method = self._matches(statement.value)
                    if method:
                        assigned.append((statement, statement.targets[0].id, method))
        if not assigned:
            return
        loads: Set[str] = {
            node.id
            for node in ast.walk(scope)
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load)
        }
        for statement, target, method in assigned:
            if target not in loads:
                self.report(
                    statement,
                    f"solver status of `{method}(...)` is assigned to `{target}` "
                    "but never checked",
                )

    def visit_Module(self, node: ast.Module) -> None:
        self._check_scope(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_scope(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_scope(node)


@register
class PrivateInternalReachInRule(Rule):
    """REP007: cross-object access to private solver/session internals.

    ``obj._highs`` / ``obj._program`` from anything but ``self``/``cls``
    bypasses the mutation-handle API: edits made behind the program's back
    are invisible to the edit log the warm-start replay depends on.
    """

    code = "REP007"
    name = "private-internal-reach-in"
    summary = "cross-object reach-in to private solver/session internals"
    default_include = ("src/repro",)

    _ATTRIBUTES = ("_highs", "_program")

    def visit_Attribute(self, node: ast.Attribute) -> None:
        attributes = tuple(self.context.option(self.code, "attributes", self._ATTRIBUTES))
        if node.attr not in attributes:
            return
        receiver = node.value
        if isinstance(receiver, ast.Name) and receiver.id in ("self", "cls"):
            return
        self.report(
            node,
            f"reach-in to private internal `.{node.attr}` from outside the owning "
            "object bypasses the mutation-handle API; use the owner's public surface",
        )
