"""General correctness-hygiene rules (REP005, REP006, REP008).

These are not Gavel-specific in spirit, but each earns its place from a
concrete failure mode in this codebase: float equality silently diverging a
water-filling level loop or a bisection step, a mutable default leaking
state between policy instantiations, and drift between ``__all__`` and the
actually-public module surface (the package is now a typed dependency —
``py.typed`` — so its exports are a contract).
"""

from __future__ import annotations

import ast
from typing import Dict, List, Sequence, Set, Tuple

from repro.analysis.config import path_matches
from repro.analysis.rules.base import Rule, register, scope_statements

__all__ = ["DunderAllConsistencyRule", "FloatEqualityRule", "MutableDefaultRule"]

#: math functions whose results are inexact floats.
_FLOAT_FUNCTIONS = (
    "math.sqrt",
    "math.exp",
    "math.expm1",
    "math.log",
    "math.log1p",
    "math.log2",
    "math.log10",
    "math.pow",
    "math.sin",
    "math.cos",
    "math.tan",
    "math.hypot",
    "math.fsum",
)


@register
class FloatEqualityRule(Rule):
    """REP005: ``==``/``!=`` on a computed float.

    Flags comparisons where either side is visibly inexact: a non-integral
    float literal, an arithmetic expression containing division, a power, or
    a non-integral float constant, or a known float-valued ``math`` call.
    Exact sentinel comparisons like ``x == 0.0`` pass — storing and
    re-comparing an unmodified float is well-defined; *recomputing* one is
    not.
    """

    code = "REP005"
    name = "float-equality"
    summary = "float ==/!= on a computed value"

    #: Comparing against one of these is already tolerance-aware
    #: (``value == pytest.approx(expected)`` is the recommended fix).
    _TOLERANCE_CALLS = ("approx",)

    def _tolerance_guarded(self, node: ast.expr) -> bool:
        if not isinstance(node, ast.Call):
            return False
        guards = tuple(self.context.option(self.code, "tolerance_calls", self._TOLERANCE_CALLS))
        if isinstance(node.func, ast.Attribute):
            return node.func.attr in guards
        return isinstance(node.func, ast.Name) and node.func.id in guards

    def _inexact(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Constant):
            return isinstance(node.value, float) and not node.value.is_integer()
        if isinstance(node, ast.UnaryOp):
            return self._inexact(node.operand)
        if isinstance(node, ast.BinOp):
            if isinstance(node.op, (ast.Div, ast.Pow)):
                return True
            return self._inexact(node.left) or self._inexact(node.right)
        if isinstance(node, ast.Call):
            dotted = self.context.dotted_name(node.func)
            functions = tuple(
                self.context.option(self.code, "float_functions", _FLOAT_FUNCTIONS)
            )
            return dotted in functions if dotted else False
        return False

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for index, op in enumerate(node.ops):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            left, right = operands[index], operands[index + 1]
            if self._tolerance_guarded(left) or self._tolerance_guarded(right):
                continue
            if self._inexact(left) or self._inexact(right):
                self.report(
                    node,
                    "float equality on a computed value is tolerance-blind; "
                    "compare with math.isclose(...) or an explicit epsilon",
                )


@register
class MutableDefaultRule(Rule):
    """REP006: mutable default argument shared across calls."""

    code = "REP006"
    name = "mutable-default-argument"
    summary = "mutable default argument"

    _MUTABLE_CALLS = (
        "list",
        "dict",
        "set",
        "bytearray",
        "collections.defaultdict",
        "collections.OrderedDict",
        "collections.Counter",
        "collections.deque",
    )

    def _is_mutable(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            dotted = self.context.dotted_name(node.func)
            if dotted is None and isinstance(node.func, ast.Name):
                dotted = node.func.id
            mutable = tuple(self.context.option(self.code, "mutable_calls", self._MUTABLE_CALLS))
            return dotted in mutable if dotted else False
        return False

    def _check_arguments(self, node: ast.AST, args: ast.arguments) -> None:
        for default in (*args.defaults, *args.kw_defaults):
            if default is not None and self._is_mutable(default):
                self.report(
                    default,
                    "mutable default argument is shared across every call; "
                    "default to None and construct inside the function",
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_arguments(node, node.args)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_arguments(node, node.args)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check_arguments(node, node.args)


@register
class DunderAllConsistencyRule(Rule):
    """REP008: ``__all__`` must exist (in the library) and match reality.

    Three checks: every ``__all__`` entry is actually bound at module top
    level, no duplicates, and every public top-level ``def``/``class`` is
    exported.  Modules under the configured ``require_in`` paths must define
    ``__all__`` at all — the package ships ``py.typed``, so the import
    surface is part of the typed API contract.
    """

    code = "REP008"
    name = "dunder-all-consistency"
    summary = "__all__ out of sync with the module's public names"

    _REQUIRE_IN = ("src/repro",)
    _EXEMPT_BASENAMES = ("__main__.py", "conftest.py", "setup.py")

    def visit_Module(self, node: ast.Module) -> None:
        dunder_all: List[str] = []
        dunder_all_node: ast.stmt | None = None
        statically_checkable = True
        bound: Set[str] = set()
        star_import = False
        public_defs: List[Tuple[str, ast.stmt]] = []

        for statement in scope_statements(node):
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                bound.add(statement.name)
                if not statement.name.startswith("_"):
                    public_defs.append((statement.name, statement))
            elif isinstance(statement, ast.Assign):
                for target in statement.targets:
                    for name_node in ast.walk(target):
                        if isinstance(name_node, ast.Name):
                            bound.add(name_node.id)
                if (
                    len(statement.targets) == 1
                    and isinstance(statement.targets[0], ast.Name)
                    and statement.targets[0].id == "__all__"
                ):
                    dunder_all_node = statement
                    if isinstance(statement.value, (ast.List, ast.Tuple)) and all(
                        isinstance(element, ast.Constant) and isinstance(element.value, str)
                        for element in statement.value.elts
                    ):
                        dunder_all = [
                            element.value
                            for element in statement.value.elts
                            if isinstance(element, ast.Constant)
                        ]
                    else:
                        statically_checkable = False
            elif isinstance(statement, ast.AnnAssign) and isinstance(
                statement.target, ast.Name
            ):
                bound.add(statement.target.id)
            elif isinstance(statement, ast.Import):
                for alias in statement.names:
                    bound.add(alias.asname or alias.name.split(".", 1)[0])
            elif isinstance(statement, ast.ImportFrom):
                for alias in statement.names:
                    if alias.name == "*":
                        star_import = True
                    else:
                        bound.add(alias.asname or alias.name)

        basename = self.context.rel_path.rsplit("/", 1)[-1]
        if dunder_all_node is None:
            require_in = tuple(self.context.option(self.code, "require_in", self._REQUIRE_IN))
            exempt = tuple(
                self.context.option(self.code, "exempt_basenames", self._EXEMPT_BASENAMES)
            )
            if basename not in exempt and path_matches(self.context.rel_path, require_in):
                self.report(
                    node,
                    "module defines no __all__; the typed package's public API "
                    "must be explicit",
                )
            return
        if not statically_checkable:
            self.report(
                dunder_all_node,
                "__all__ is not a literal list/tuple of strings, so it cannot "
                "be checked statically",
            )
            return

        seen: Set[str] = set()
        for exported in dunder_all:
            if exported in seen:
                self.report(dunder_all_node, f"duplicate name `{exported}` in __all__")
            seen.add(exported)
            if not star_import and exported not in bound:
                self.report(
                    dunder_all_node,
                    f"name `{exported}` in __all__ is not defined in the module",
                )
        for public_name, definition in public_defs:
            if public_name not in seen:
                self.report(
                    definition,
                    f"public name `{public_name}` is missing from __all__; export "
                    "it or rename it with a leading underscore",
                )
