"""Rule registry: importing this package registers every ``REP0xx`` rule.

The public surface is the registry itself — individual rule classes are
addressed by code through :data:`RULE_CLASSES` rather than re-exported
here, so adding a rule never changes this module's API.  The per-class
imports below are what populate the registry.
"""

from __future__ import annotations

from repro.analysis.rules.base import (
    RULE_CLASSES,
    ProjectRule,
    Rule,
    all_rule_codes,
    iter_rule_classes,
)
from repro.analysis.rules.determinism import (
    HeapTiebreakRule,
    SetIterationRule,
    UnseededRandomRule,
    WallClockRule,
)
from repro.analysis.rules.hygiene import (
    DunderAllConsistencyRule,
    FloatEqualityRule,
    MutableDefaultRule,
)
from repro.analysis.rules.solver_discipline import (
    IgnoredSolverStatusRule,
    PrivateInternalReachInRule,
)
from repro.analysis.rules.whole_program import (
    DeadExportRule,
    DeltaDispatchExhaustivenessRule,
    ImportLayeringRule,
    SnapshotFieldCoverageRule,
)

__all__ = [
    "RULE_CLASSES",
    "ProjectRule",
    "Rule",
    "all_rule_codes",
    "iter_rule_classes",
]
