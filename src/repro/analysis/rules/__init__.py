"""Rule registry: importing this package registers every ``REP0xx`` rule."""

from __future__ import annotations

from repro.analysis.rules.base import RULE_CLASSES, Rule, all_rule_codes, iter_rule_classes
from repro.analysis.rules.determinism import SetIterationRule, UnseededRandomRule, WallClockRule
from repro.analysis.rules.hygiene import (
    DunderAllConsistencyRule,
    FloatEqualityRule,
    MutableDefaultRule,
)
from repro.analysis.rules.solver_discipline import (
    IgnoredSolverStatusRule,
    PrivateInternalReachInRule,
)

__all__ = [
    "RULE_CLASSES",
    "Rule",
    "DunderAllConsistencyRule",
    "FloatEqualityRule",
    "IgnoredSolverStatusRule",
    "MutableDefaultRule",
    "PrivateInternalReachInRule",
    "SetIterationRule",
    "UnseededRandomRule",
    "WallClockRule",
    "all_rule_codes",
    "iter_rule_classes",
]
