"""Rule base class and the ``REP0xx`` registry.

A rule is a class with a unique ``code``, a one-line ``summary``, default
path scoping, and ``visit_<NodeType>`` methods; the engine instantiates one
rule object per file and dispatches matching AST nodes to it in a single
tree walk.  Rules that need whole-scope context (dataflow over a function
body, module-level name accounting) register for the scope node
(``visit_Module``/``visit_FunctionDef``) and walk the subtree themselves.
"""

from __future__ import annotations

import ast
from typing import Callable, ClassVar, Dict, Iterator, List, Sequence, Tuple, Type

from repro.analysis.context import FileContext
from repro.analysis.violations import Violation

__all__ = [
    "RULE_CLASSES",
    "Rule",
    "all_rule_codes",
    "iter_rule_classes",
    "register",
    "scope_statements",
]

Reporter = Callable[[ast.AST, str], None]


class Rule:
    """One invariant, checked per file.  Subclasses override ``visit_*``."""

    code: ClassVar[str] = ""
    name: ClassVar[str] = ""
    summary: ClassVar[str] = ""
    #: Default path scope (project-relative prefixes); empty = everywhere.
    default_include: ClassVar[Tuple[str, ...]] = ()
    default_exclude: ClassVar[Tuple[str, ...]] = ()

    def __init__(self, context: FileContext) -> None:
        self.context = context
        self.violations: List[Violation] = []

    def report(self, node: ast.AST, message: str) -> None:
        self.violations.append(
            Violation(
                path=self.context.rel_path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0) + 1,
                code=self.code,
                message=message,
            )
        )

    def finish(self) -> None:
        """Hook called once after the tree walk completes."""


#: code → rule class, in registration order.
RULE_CLASSES: Dict[str, Type[Rule]] = {}


def register(rule_class: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not rule_class.code:
        raise ValueError(f"rule {rule_class.__name__} has no code")
    if rule_class.code in RULE_CLASSES:
        raise ValueError(f"duplicate rule code {rule_class.code}")
    RULE_CLASSES[rule_class.code] = rule_class
    return rule_class


def iter_rule_classes() -> Iterator[Type[Rule]]:
    yield from RULE_CLASSES.values()


def all_rule_codes() -> List[str]:
    return sorted(RULE_CLASSES)


def scope_statements(scope: ast.AST) -> Iterator[ast.stmt]:
    """Statements belonging to one scope, without descending into nested defs.

    Yields every statement reachable from ``scope``'s body through compound
    statements (``if``/``for``/``with``/``try``...), stopping at nested
    function and class definitions — those are their own scopes and get their
    own rule visit.
    """
    body: Sequence[ast.stmt] = getattr(scope, "body", [])
    stack: List[ast.stmt] = list(body)
    while stack:
        statement = stack.pop()
        yield statement
        if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        for child_field in ("body", "orelse", "finalbody"):
            stack.extend(getattr(statement, child_field, []))
        for handler in getattr(statement, "handlers", []):
            stack.extend(handler.body)
        for case in getattr(statement, "cases", []):
            stack.extend(case.body)
