"""Rule base classes and the ``REP0xx`` registry.

Two rule kinds share one registry:

* a per-file :class:`Rule` has ``visit_<NodeType>`` methods; the engine
  instantiates one rule object per file and dispatches matching AST nodes to
  it in a single tree walk.  Rules that need whole-scope context (dataflow
  over a function body, module-level name accounting) register for the scope
  node (``visit_Module``/``visit_FunctionDef``) and walk the subtree
  themselves.
* a whole-program :class:`ProjectRule` runs once per analysis over the
  :class:`~repro.analysis.project.ProjectContext` aggregated from every
  scanned file, and may report violations in any of them (import layering,
  cross-module exhaustiveness, dead exports).

Both kinds register through :func:`register` and share the configuration,
``--select``/``--ignore`` and suppression machinery.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Any, Callable, ClassVar, Dict, Iterator, List, Mapping, Sequence, Tuple, Type, Union

from repro.analysis.context import FileContext
from repro.analysis.violations import Violation

if TYPE_CHECKING:
    from repro.analysis.config import AnalysisConfig
    from repro.analysis.project import ProjectContext

__all__ = [
    "RULE_CLASSES",
    "AnyRuleClass",
    "ProjectRule",
    "Rule",
    "all_rule_codes",
    "handler_node_types",
    "iter_rule_classes",
    "register",
    "scope_statements",
]

Reporter = Callable[[ast.AST, str], None]


class Rule:
    """One invariant, checked per file.  Subclasses override ``visit_*``."""

    code: ClassVar[str] = ""
    name: ClassVar[str] = ""
    summary: ClassVar[str] = ""
    #: Default path scope (project-relative prefixes); empty = everywhere.
    default_include: ClassVar[Tuple[str, ...]] = ()
    default_exclude: ClassVar[Tuple[str, ...]] = ()

    def __init__(self, context: FileContext) -> None:
        self.context = context
        self.violations: List[Violation] = []

    def report(self, node: ast.AST, message: str) -> None:
        self.violations.append(
            Violation(
                path=self.context.rel_path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0) + 1,
                code=self.code,
                message=message,
            )
        )

    def finish(self) -> None:
        """Hook called once after the tree walk completes."""


class ProjectRule:
    """One cross-module invariant, checked once over the whole program.

    Subclasses override :meth:`check`; ``default_include``/``default_exclude``
    scope which *reported* paths the rule may flag (the context it reads is
    always the full scanned corpus).
    """

    code: ClassVar[str] = ""
    name: ClassVar[str] = ""
    summary: ClassVar[str] = ""
    default_include: ClassVar[Tuple[str, ...]] = ()
    default_exclude: ClassVar[Tuple[str, ...]] = ()

    def __init__(self, config: "AnalysisConfig") -> None:
        self.config = config
        self.violations: List[Violation] = []

    def option(self, key: str, default: Any) -> Any:
        """Rule-specific option with the pyproject override applied."""
        return self.config.rule_settings(self.code).options.get(key, default)

    def report(self, rel_path: str, line: int, col: int, message: str) -> None:
        self.violations.append(
            Violation(path=rel_path, line=line, col=col, code=self.code, message=message)
        )

    def check(self, project: "ProjectContext") -> None:
        """Inspect the project context and :meth:`report` violations."""
        raise NotImplementedError


AnyRuleClass = Union[Type[Rule], Type[ProjectRule]]

#: code → rule class (per-file and project rules), in registration order.
RULE_CLASSES: Dict[str, AnyRuleClass] = {}

#: rule class → node-type names it handles, computed once per class (the
#: engine's dispatch previously re-derived this with ``dir()`` per file).
_HANDLER_NODE_TYPES: Dict[Type[Rule], Tuple[str, ...]] = {}


def handler_node_types(rule_class: Type[Rule]) -> Tuple[str, ...]:
    """AST node-type names (``"Call"``, ``"Module"``…) the rule visits."""
    cached = _HANDLER_NODE_TYPES.get(rule_class)
    if cached is None:
        cached = tuple(
            attribute[len("visit_") :]
            for attribute in dir(rule_class)
            if attribute.startswith("visit_")
        )
        _HANDLER_NODE_TYPES[rule_class] = cached
    return cached


def register(rule_class: AnyRuleClass) -> AnyRuleClass:
    """Class decorator adding a (per-file or project) rule to the registry."""
    if not rule_class.code:
        raise ValueError(f"rule {rule_class.__name__} has no code")
    if rule_class.code in RULE_CLASSES:
        raise ValueError(f"duplicate rule code {rule_class.code}")
    RULE_CLASSES[rule_class.code] = rule_class
    return rule_class


def iter_rule_classes() -> Iterator[AnyRuleClass]:
    yield from RULE_CLASSES.values()


def all_rule_codes() -> List[str]:
    return sorted(RULE_CLASSES)


def scope_statements(scope: ast.AST) -> Iterator[ast.stmt]:
    """Statements belonging to one scope, without descending into nested defs.

    Yields every statement reachable from ``scope``'s body through compound
    statements (``if``/``for``/``with``/``try``...), stopping at nested
    function and class definitions — those are their own scopes and get their
    own rule visit.
    """
    body: Sequence[ast.stmt] = getattr(scope, "body", [])
    stack: List[ast.stmt] = list(body)
    while stack:
        statement = stack.pop()
        yield statement
        if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        for child_field in ("body", "orelse", "finalbody"):
            stack.extend(getattr(statement, child_field, []))
        for handler in getattr(statement, "handlers", []):
            stack.extend(handler.body)
        for case in getattr(statement, "cases", []):
            stack.extend(case.body)
