"""Tests for synthetic trace generation (§7.1 setup)."""

import math

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.workloads import ThroughputOracle, TraceGenerator, TraceGeneratorConfig


@pytest.fixture(scope="module")
def generator():
    return TraceGenerator(ThroughputOracle())


@pytest.fixture(scope="module")
def multi_generator():
    return TraceGenerator(ThroughputOracle(), config=TraceGeneratorConfig(multi_worker=True))


class TestStaticTraces:
    def test_all_jobs_arrive_at_zero(self, generator):
        trace = generator.generate_static(num_jobs=30, seed=0)
        assert trace.is_static()
        assert len(trace) == 30

    def test_determinism_per_seed(self, generator):
        first = generator.generate_static(num_jobs=10, seed=7)
        second = generator.generate_static(num_jobs=10, seed=7)
        assert [j.job_type for j in first] == [j.job_type for j in second]
        assert [j.total_steps for j in first] == [j.total_steps for j in second]

    def test_different_seeds_differ(self, generator):
        first = generator.generate_static(num_jobs=20, seed=0)
        second = generator.generate_static(num_jobs=20, seed=1)
        assert [j.job_type for j in first] != [j.job_type for j in second]

    def test_invalid_num_jobs(self, generator):
        with pytest.raises(ConfigurationError):
            generator.generate_static(num_jobs=0)


class TestContinuousTraces:
    def test_poisson_interarrival_mean(self, generator):
        rate = 6.0
        trace = generator.generate_continuous(num_jobs=400, jobs_per_hour=rate, seed=1)
        arrivals = [job.arrival_time for job in trace]
        gaps = np.diff(arrivals)
        assert np.mean(gaps) == pytest.approx(3600.0 / rate, rel=0.2)

    def test_arrivals_strictly_increasing(self, generator):
        trace = generator.generate_continuous(num_jobs=50, jobs_per_hour=2.0, seed=3)
        arrivals = [job.arrival_time for job in trace]
        assert all(b >= a for a, b in zip(arrivals, arrivals[1:]))

    def test_invalid_rate(self, generator):
        with pytest.raises(ConfigurationError):
            generator.generate_continuous(num_jobs=5, jobs_per_hour=0.0)


class TestDurations:
    def test_duration_bounds_match_paper(self, generator):
        """Durations are log-uniform between 10^1.5 and 10^4 minutes."""
        trace = generator.generate_static(num_jobs=300, seed=5)
        for job in trace:
            minutes = job.duration_seconds_on_reference / 60.0
            assert 10**1.5 - 1e-6 <= minutes <= 10**4 + 1e-6

    def test_steps_consistent_with_reference_throughput(self, generator):
        oracle = generator.oracle
        trace = generator.generate_static(num_jobs=50, seed=2)
        for job in trace:
            reference = oracle.throughput(job.job_type, "v100", scale_factor=job.scale_factor)
            assert job.total_steps == pytest.approx(
                max(1.0, job.duration_seconds_on_reference * reference)
            )


class TestScaleFactors:
    def test_single_worker_by_default(self, generator):
        trace = generator.generate_static(num_jobs=50, seed=0)
        assert trace.scale_factor_histogram() == {1: 50}

    def test_multi_worker_proportions(self, multi_generator):
        """Roughly 70% 1-worker, 25% 2-4-worker, 5% 8-worker (§7.1)."""
        trace = multi_generator.generate_static(num_jobs=1000, seed=0)
        histogram = trace.scale_factor_histogram()
        total = len(trace)
        single = histogram.get(1, 0) / total
        small = (histogram.get(2, 0) + histogram.get(4, 0)) / total
        large = histogram.get(8, 0) / total
        assert single == pytest.approx(0.70, abs=0.06)
        assert small == pytest.approx(0.25, abs=0.06)
        assert large == pytest.approx(0.05, abs=0.03)

    def test_invalid_fractions_rejected(self):
        with pytest.raises(ConfigurationError):
            TraceGeneratorConfig(single_worker_fraction=0.9, small_multi_fraction=0.3)


class TestDecorators:
    def test_assign_priorities_marks_fraction(self, generator):
        trace = generator.generate_static(num_jobs=200, seed=0)
        decorated = TraceGenerator.assign_priorities(trace, high_priority_fraction=0.2, seed=1)
        high = sum(1 for job in decorated if job.priority_weight > 1.0)
        assert 0.1 <= high / len(decorated) <= 0.3

    def test_assign_entities_round_robin_blocks(self, generator):
        trace = generator.generate_static(num_jobs=9, seed=0)
        decorated = TraceGenerator.assign_entities(trace, num_entities=3)
        entities = [job.entity_id for job in decorated]
        assert set(entities) == {0, 1, 2}
        assert entities == sorted(entities)

    def test_assign_slos_multiples_of_ideal_duration(self, generator):
        oracle = generator.oracle
        trace = generator.generate_static(num_jobs=20, seed=0)
        decorated = generator.assign_slos(trace, slo_multipliers=(1.2, 2.0, 10.0), seed=0)
        for job in decorated:
            best = max(
                oracle.throughput(job.job_type, name, scale_factor=job.scale_factor)
                for name in oracle.registry.names
            )
            ideal = job.total_steps / best
            ratio = job.slo_seconds / ideal
            assert any(math.isclose(ratio, m, rel_tol=1e-6) for m in (1.2, 2.0, 10.0))

    def test_invalid_priority_fraction(self, generator):
        trace = generator.generate_static(num_jobs=5, seed=0)
        with pytest.raises(ConfigurationError):
            TraceGenerator.assign_priorities(trace, high_priority_fraction=1.5)
