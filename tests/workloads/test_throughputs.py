"""Tests for the synthetic throughput oracle."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import ConfigurationError, UnknownAcceleratorError, UnknownJobError
from repro.workloads import ThroughputOracle, default_job_type_table

JOB_TYPES = list(default_job_type_table().names)


@pytest.fixture(scope="module")
def oracle():
    return ThroughputOracle()


class TestSingleWorkerThroughput:
    def test_v100_fastest_for_every_job(self, oracle):
        """Figure 1a: raw throughput is always highest on the newest GPU."""
        for job_type in JOB_TYPES:
            v100 = oracle.single_worker_throughput(job_type, "v100")
            p100 = oracle.single_worker_throughput(job_type, "p100")
            k80 = oracle.single_worker_throughput(job_type, "k80")
            assert v100 > p100 > k80 > 0

    def test_resnet50_vs_a3c_speedup_spread(self, oracle):
        """The V100/K80 speedup varies widely across models (motivation, Fig. 1a)."""
        resnet = oracle.single_worker_throughput("resnet50-bs64", "v100") / oracle.single_worker_throughput(
            "resnet50-bs64", "k80"
        )
        a3c = oracle.single_worker_throughput("a3c-bs4", "v100") / oracle.single_worker_throughput(
            "a3c-bs4", "k80"
        )
        assert resnet > 3 * a3c

    def test_unknown_accelerator_raises(self, oracle):
        with pytest.raises(UnknownAcceleratorError):
            oracle.single_worker_throughput("a3c-bs4", "tpu")

    def test_unknown_job_type_raises(self, oracle):
        with pytest.raises(UnknownJobError):
            oracle.single_worker_throughput("bert-bs8", "v100")

    def test_throughput_vector_ordering(self, oracle):
        vector = oracle.throughput_vector("lstm-bs20")
        assert vector.shape == (3,)
        assert vector[0] > vector[1] > vector[2]

    def test_throughput_table_covers_all_types(self, oracle):
        table = oracle.throughput_table()
        assert set(table) == set(JOB_TYPES)


class TestDollarNormalized:
    def test_k80_or_p100_wins_for_low_speedup_models(self, oracle):
        """Figure 1b: the V100 is not the best per-dollar choice for every model."""
        best = oracle.best_accelerator("a3c-bs4", dollar_normalized=True)
        assert best in ("k80", "p100")

    def test_v100_still_wins_per_dollar_for_resnet50(self, oracle):
        assert oracle.best_accelerator("resnet50-bs64", dollar_normalized=False) == "v100"

    def test_dollar_normalized_positive(self, oracle):
        for job_type in JOB_TYPES[:5]:
            for name in ("v100", "p100", "k80"):
                assert oracle.dollar_normalized_throughput(job_type, name) > 0


class TestDistributedScaling:
    def test_efficiency_decreases_with_scale(self, oracle):
        e2 = oracle.scaling_efficiency("resnet50-bs64", 2)
        e8 = oracle.scaling_efficiency("resnet50-bs64", 8)
        assert 1.0 > e2 > e8 > 0.0

    def test_single_worker_efficiency_is_one(self, oracle):
        assert oracle.scaling_efficiency("lstm-bs20", 1) == 1.0

    def test_unconsolidated_slower_than_consolidated(self, oracle):
        consolidated = oracle.throughput("transformer-bs64", "v100", scale_factor=4, consolidated=True)
        unconsolidated = oracle.throughput(
            "transformer-bs64", "v100", scale_factor=4, consolidated=False
        )
        assert consolidated > unconsolidated

    def test_aggregate_throughput_grows_with_workers(self, oracle):
        one = oracle.throughput("resnet50-bs64", "v100", scale_factor=1)
        four = oracle.throughput("resnet50-bs64", "v100", scale_factor=4)
        assert four > one

    def test_invalid_scale_factor(self, oracle):
        with pytest.raises(ConfigurationError):
            oracle.scaling_efficiency("a3c-bs4", 0)

    @given(scale=st.sampled_from([1, 2, 4, 8, 16]), job=st.sampled_from(JOB_TYPES))
    @settings(max_examples=30, deadline=None)
    def test_per_worker_efficiency_bounded(self, scale, job):
        oracle = ThroughputOracle()
        efficiency = oracle.scaling_efficiency(job, scale)
        assert 0.0 < efficiency <= 1.0


class TestConfiguration:
    def test_negative_batch_exponent_rejected(self):
        with pytest.raises(ConfigurationError):
            ThroughputOracle(batch_size_speedup_exponent=-0.1)

    def test_best_accelerator_consistent_with_vector(self, oracle):
        for job_type in JOB_TYPES[:6]:
            best = oracle.best_accelerator(job_type)
            vector = oracle.throughput_vector(job_type)
            assert oracle.registry.index_of(best) == int(np.argmax(vector))
