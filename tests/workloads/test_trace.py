"""Tests for trace data structures."""

import pytest

from repro.exceptions import TraceError
from repro.workloads import Job, Trace


def _job(job_id, arrival=0.0, scale=1, job_type="a3c-bs4"):
    return Job(job_id=job_id, job_type=job_type, total_steps=100.0, arrival_time=arrival, scale_factor=scale)


class TestTraceConstruction:
    def test_from_jobs_sorts_by_arrival(self):
        trace = Trace.from_jobs([_job(1, 50.0), _job(0, 10.0)])
        assert [job.job_id for job in trace] == [0, 1]

    def test_duplicate_ids_rejected(self):
        with pytest.raises(TraceError):
            Trace.from_jobs([_job(0), _job(0)])

    def test_unsorted_direct_construction_rejected(self):
        with pytest.raises(TraceError):
            Trace(jobs=(_job(0, 100.0), _job(1, 10.0)))

    def test_len_and_getitem(self):
        trace = Trace.from_jobs([_job(0), _job(1)])
        assert len(trace) == 2
        assert trace[1].job_id == 1


class TestTraceQueries:
    def test_job_lookup(self):
        trace = Trace.from_jobs([_job(0), _job(5, 10.0)])
        assert trace.job(5).arrival_time == 10.0

    def test_job_lookup_missing(self):
        with pytest.raises(TraceError):
            Trace.from_jobs([_job(0)]).job(9)

    def test_is_static(self):
        assert Trace.from_jobs([_job(0), _job(1)]).is_static()
        assert not Trace.from_jobs([_job(0), _job(1, 5.0)]).is_static()

    def test_arrival_span(self):
        trace = Trace.from_jobs([_job(0, 0.0), _job(1, 120.0)])
        assert trace.arrival_span_seconds() == 120.0

    def test_job_types_first_appearance_order(self):
        trace = Trace.from_jobs(
            [_job(0, job_type="a3c-bs4"), _job(1, job_type="lstm-bs20"), _job(2, job_type="a3c-bs4")]
        )
        assert trace.job_types() == ("a3c-bs4", "lstm-bs20")

    def test_scale_factor_histogram(self):
        trace = Trace.from_jobs([_job(0, scale=1), _job(1, scale=4), _job(2, scale=1)])
        assert trace.scale_factor_histogram() == {1: 2, 4: 1}


class TestTraceTransforms:
    def test_subset(self):
        trace = Trace.from_jobs([_job(i, float(i)) for i in range(5)]).subset(2)
        assert len(trace) == 2
        assert [job.job_id for job in trace] == [0, 1]

    def test_subset_negative_rejected(self):
        with pytest.raises(TraceError):
            Trace.from_jobs([_job(0)]).subset(-1)

    def test_map_jobs(self):
        trace = Trace.from_jobs([_job(0), _job(1)])
        upgraded = trace.map_jobs(lambda job: job.with_priority(9.0))
        assert all(job.priority_weight == 9.0 for job in upgraded)
        assert all(job.priority_weight == 1.0 for job in trace)
