"""Tests for the space-sharing (colocation) throughput model."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.workloads import ColocationModel, ThroughputOracle


@pytest.fixture(scope="module")
def model():
    return ColocationModel(ThroughputOracle())


class TestRetainedFractions:
    def test_fractions_in_unit_interval(self, model):
        for a in ("resnet50-bs64", "a3c-bs4", "lstm-bs20"):
            for b in ("cyclegan-bs1", "resnet18-bs32"):
                for accel in ("v100", "p100", "k80"):
                    fraction = model.retained_fraction(a, b, accel)
                    assert 0.0 < fraction <= 1.0

    def test_light_partner_hurts_less_than_heavy_partner(self, model):
        """Pairing with A3C (light) must retain more throughput than with CycleGAN (heavy)."""
        with_light = model.retained_fraction("resnet50-bs64", "a3c-bs4", "p100")
        with_heavy = model.retained_fraction("resnet50-bs64", "cyclegan-bs1", "p100")
        assert with_light > with_heavy

    def test_invalid_interference_strength(self):
        with pytest.raises(ConfigurationError):
            ColocationModel(interference_strength=1.5)


class TestMemoryFeasibility:
    def test_two_large_models_do_not_fit(self, model):
        """ResNet-50 bs128 (12 GB) + CycleGAN (9 GB) exceed a 16 GB device."""
        assert not model.fits_in_memory("resnet50-bs128", "cyclegan-bs1", "v100")

    def test_two_small_models_fit(self, model):
        assert model.fits_in_memory("a3c-bs4", "lstm-bs5", "k80")

    def test_infeasible_pair_has_zero_throughputs(self, model):
        pair = model.colocated_throughputs("resnet50-bs128", "cyclegan-bs1", "v100")
        assert pair.first == 0.0 and pair.second == 0.0
        assert not pair.feasible


class TestCombinedThroughput:
    def test_colocated_below_isolated(self, model):
        oracle = model.oracle
        pair = model.colocated_throughputs("resnet18-bs32", "lstm-bs20", "p100")
        assert pair.first < oracle.throughput("resnet18-bs32", "p100")
        assert pair.second < oracle.throughput("lstm-bs20", "p100")

    def test_good_pairs_beat_time_slicing(self, model):
        """Combined normalized throughput > 1 means space sharing helps."""
        combined = model.combined_normalized_throughput("resnet18-bs16", "a3c-bs4", "v100")
        assert combined > 1.0

    def test_two_compute_bound_jobs_gain_little(self, model):
        combined = model.combined_normalized_throughput("resnet50-bs16", "cyclegan-bs1", "k80")
        light = model.combined_normalized_throughput("a3c-bs4", "lstm-bs5", "k80")
        assert combined < light

    def test_pairwise_variation_is_large(self, model):
        """Figure 15: different pairs have vastly different colocated performance."""
        names, matrix = model.normalized_matrix("p100")
        finite = matrix[np.isfinite(matrix)]
        assert finite.max() - finite.min() > 0.4

    def test_is_beneficial_threshold(self, model):
        assert model.is_beneficial("a3c-bs4", "lstm-bs5", "v100", threshold=1.1)
        assert not model.is_beneficial("resnet50-bs128", "cyclegan-bs1", "v100")


class TestNormalizedMatrix:
    def test_matrix_shape_and_symmetric_feasibility(self, model):
        names, matrix = model.normalized_matrix("p100")
        assert matrix.shape == (len(names), len(names))
        nan_mask = np.isnan(matrix)
        np.testing.assert_array_equal(nan_mask, nan_mask.T)

    def test_subset_of_job_types(self, model):
        names, matrix = model.normalized_matrix("v100", job_types=["a3c-bs4", "lstm-bs5"])
        assert names == ["a3c-bs4", "lstm-bs5"]
        assert matrix.shape == (2, 2)

    def test_infeasible_pairs_are_nan(self, model):
        names, matrix = model.normalized_matrix("v100", job_types=["resnet50-bs128", "cyclegan-bs1"])
        assert np.isnan(matrix[0, 1])
