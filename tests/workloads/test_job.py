"""Tests for the Job model."""

import pytest
from hypothesis import given, strategies as st

from repro.exceptions import ConfigurationError
from repro.workloads import Job, JobIdAllocator


class TestJobValidation:
    def test_basic_construction(self):
        job = Job(job_id=0, job_type="resnet50-bs64", total_steps=1000.0)
        assert job.scale_factor == 1
        assert job.priority_weight == 1.0
        assert job.slo_seconds is None

    def test_negative_id_rejected(self):
        with pytest.raises(ConfigurationError):
            Job(job_id=-1, job_type="x", total_steps=1.0)

    def test_empty_type_rejected(self):
        with pytest.raises(ConfigurationError):
            Job(job_id=0, job_type="", total_steps=1.0)

    def test_non_positive_steps_rejected(self):
        with pytest.raises(ConfigurationError):
            Job(job_id=0, job_type="x", total_steps=0.0)

    def test_infinite_steps_rejected(self):
        with pytest.raises(ConfigurationError):
            Job(job_id=0, job_type="x", total_steps=float("inf"))

    def test_negative_arrival_rejected(self):
        with pytest.raises(ConfigurationError):
            Job(job_id=0, job_type="x", total_steps=1.0, arrival_time=-1.0)

    def test_fractional_scale_factor_rejected(self):
        with pytest.raises(ConfigurationError):
            Job(job_id=0, job_type="x", total_steps=1.0, scale_factor=1.5)

    def test_non_positive_priority_rejected(self):
        with pytest.raises(ConfigurationError):
            Job(job_id=0, job_type="x", total_steps=1.0, priority_weight=0.0)

    def test_non_positive_slo_rejected(self):
        with pytest.raises(ConfigurationError):
            Job(job_id=0, job_type="x", total_steps=1.0, slo_seconds=0.0)


class TestJobTransforms:
    def test_with_priority_returns_new_job(self):
        job = Job(job_id=0, job_type="x", total_steps=1.0)
        upgraded = job.with_priority(5.0)
        assert upgraded.priority_weight == 5.0
        assert job.priority_weight == 1.0

    def test_with_entity(self):
        job = Job(job_id=0, job_type="x", total_steps=1.0).with_entity(2)
        assert job.entity_id == 2

    def test_with_slo(self):
        job = Job(job_id=0, job_type="x", total_steps=1.0).with_slo(3600.0)
        assert job.slo_seconds == 3600.0

    def test_str_mentions_type_and_id(self):
        text = str(Job(job_id=7, job_type="lstm-bs20", total_steps=10.0))
        assert "7" in text and "lstm-bs20" in text

    @given(steps=st.floats(min_value=1.0, max_value=1e9), scale=st.integers(1, 64))
    def test_valid_jobs_roundtrip(self, steps, scale):
        job = Job(job_id=1, job_type="x", total_steps=steps, scale_factor=scale)
        assert job.total_steps == steps
        assert job.scale_factor == scale


class TestJobIdAllocator:
    def test_ids_are_sequential(self):
        allocator = JobIdAllocator()
        assert [allocator.next_id() for _ in range(3)] == [0, 1, 2]
        assert allocator.num_allocated == 3

    def test_custom_start(self):
        allocator = JobIdAllocator(start=10)
        assert allocator.next_id() == 10

    def test_negative_start_rejected(self):
        with pytest.raises(ConfigurationError):
            JobIdAllocator(start=-1)
