"""Tests for the Table 2 job-type table."""

import pytest

from repro.exceptions import ConfigurationError, UnknownJobError
from repro.workloads import JobTypeSpec, default_job_type_table, job_type_name


@pytest.fixture(scope="module")
def table():
    return default_job_type_table()


class TestDefaultTable:
    def test_has_26_configurations(self, table):
        """Table 2 lists 26 model / batch-size configurations."""
        assert len(table) == 26

    def test_has_seven_models(self, table):
        assert set(table.models()) == {
            "resnet50",
            "resnet18",
            "a3c",
            "lstm",
            "transformer",
            "cyclegan",
            "recoder",
        }

    def test_batch_size_counts_match_table2(self, table):
        expected = {
            "resnet50": 4,
            "resnet18": 5,
            "a3c": 1,
            "lstm": 5,
            "transformer": 5,
            "cyclegan": 1,
            "recoder": 5,
        }
        for model, count in expected.items():
            assert len(table.types_for_model(model)) == count

    def test_names_are_unique(self, table):
        assert len(set(table.names)) == len(table.names)

    def test_lookup_by_name(self, table):
        spec = table.get("resnet50-bs64")
        assert spec.model == "resnet50"
        assert spec.batch_size == 64

    def test_unknown_name_raises(self, table):
        with pytest.raises(UnknownJobError):
            table.get("bert-bs32")

    def test_unknown_model_raises(self, table):
        with pytest.raises(UnknownJobError):
            table.types_for_model("bert")

    def test_contains(self, table):
        assert "a3c-bs4" in table
        assert "a3c-bs8" not in table


class TestCalibration:
    def test_resnet50_speedup_matches_figure1(self, table):
        """Figure 1a: ResNet-50 sees ~10x V100 over K80; A3C only ~2x."""
        resnet = table.get("resnet50-bs64")
        a3c = table.get("a3c-bs4")
        assert 8.0 <= resnet.speedup("v100") <= 11.0
        assert 1.5 <= a3c.speedup("v100") <= 2.5

    def test_k80_speedup_is_one(self, table):
        for spec in table:
            assert spec.speedup("k80") == 1.0

    def test_unknown_accelerator_speedup_raises(self, table):
        with pytest.raises(UnknownJobError):
            table.get("a3c-bs4").speedup("tpu")

    def test_all_speedups_at_least_one(self, table):
        for spec in table:
            assert spec.speedup("v100") >= spec.speedup("p100") >= 1.0

    def test_job_type_name_format(self):
        assert job_type_name("resnet50", 64) == "resnet50-bs64"


class TestSpecValidation:
    def _spec(self, **overrides):
        base = dict(
            model="m",
            batch_size=8,
            base_k80_throughput=1.0,
            speedups={"v100": 2.0, "p100": 1.5},
            compute_intensity=0.5,
            memory_gb=4.0,
            consolidated_scaling=0.9,
            unconsolidated_scaling=0.7,
        )
        base.update(overrides)
        return JobTypeSpec(**base)

    def test_valid_spec(self):
        assert self._spec().name == "m-bs8"

    def test_rejects_non_positive_base_throughput(self):
        with pytest.raises(ConfigurationError):
            self._spec(base_k80_throughput=0.0)

    def test_rejects_out_of_range_compute_intensity(self):
        with pytest.raises(ConfigurationError):
            self._spec(compute_intensity=1.5)

    def test_rejects_unconsolidated_faster_than_consolidated(self):
        with pytest.raises(ConfigurationError):
            self._spec(consolidated_scaling=0.6, unconsolidated_scaling=0.9)

    def test_duplicate_names_rejected(self):
        from repro.workloads.job_table import JobTypeTable

        spec = self._spec()
        with pytest.raises(ConfigurationError):
            JobTypeTable([spec, spec])
