"""Result-cache correctness: hits, invalidation, pruning, and jobs parity.

The cache must be *transparent*: a cached run reports exactly what a cold
run reports, and any input that could change a file's result — its content,
the resolved configuration, or the cache format version — must invalidate
exactly the affected entries.  The ``--jobs`` path shares the same
``FileResult`` plumbing, so its parity test lives here too.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

from repro.analysis import AnalysisConfig, ResultCache, RuleSettings, analyze_paths, scan_file
from repro.analysis.cache import CACHE_VERSION, result_from_dict, result_to_dict
from repro.analysis.engine import iter_python_files
from repro.analysis.rules import RULE_CLASSES

NOISY = "def f(xs=[]):\n    return xs\n"
CLEAN = "def f(x):\n    return x\n"


def everywhere(root: Path) -> AnalysisConfig:
    return AnalysisConfig(
        root=root, rules={code: RuleSettings(include=()) for code in RULE_CLASSES}
    )


def corpus(tmp_path: Path) -> Path:
    (tmp_path / "noisy.py").write_text(NOISY)
    (tmp_path / "clean.py").write_text(CLEAN)
    return tmp_path


def run(root: Path, cache: ResultCache | None = None, jobs: int = 1):
    violations, files_scanned = analyze_paths([root], everywhere(root), jobs=jobs, cache=cache)
    return [
        (violation.path, violation.line, violation.code) for violation in violations
    ], files_scanned


def test_file_result_round_trips_through_dict(tmp_path: Path) -> None:
    target = corpus(tmp_path) / "noisy.py"
    result = scan_file(target, everywhere(tmp_path))
    assert result.violations and result.summary is not None
    assert result_from_dict(result_to_dict(result)) == result


def test_warm_cache_hits_and_matches_cold_run(tmp_path: Path) -> None:
    root = corpus(tmp_path)
    cache_file = tmp_path / ".cache" / "analysis.json"
    config = everywhere(root)

    cold_cache = ResultCache(cache_file, config)
    cold = run(root, cache=cold_cache)
    assert (cold_cache.hits, cold_cache.misses) == (0, 2)
    assert cache_file.exists()

    warm_cache = ResultCache(cache_file, config)
    warm = run(root, cache=warm_cache)
    assert (warm_cache.hits, warm_cache.misses) == (2, 0)
    assert warm == cold


def test_editing_a_file_invalidates_only_it(tmp_path: Path) -> None:
    root = corpus(tmp_path)
    cache_file = tmp_path / "analysis-cache.json"
    config = everywhere(root)
    run(root, cache=ResultCache(cache_file, config))

    (root / "clean.py").write_text("def g(ys={}):\n    return ys\n")
    edited_cache = ResultCache(cache_file, config)
    violations, _files = run(root, cache=edited_cache)
    assert (edited_cache.hits, edited_cache.misses) == (1, 1)
    assert ("clean.py", 1, "REP006") in violations


def test_config_change_invalidates_everything(tmp_path: Path) -> None:
    root = corpus(tmp_path)
    cache_file = tmp_path / "analysis-cache.json"
    config = everywhere(root)
    run(root, cache=ResultCache(cache_file, config))

    narrowed = dataclasses.replace(config, ignore=frozenset({"REP006"}))
    cache = ResultCache(cache_file, narrowed)
    violations, _files = analyze_paths([root], narrowed, cache=cache)
    assert (cache.hits, cache.misses) == (0, 2)
    assert not any(code == "REP006" for _path, _line, code in
                   [(v.path, v.line, v.code) for v in violations])


def test_save_prunes_entries_for_deleted_files(tmp_path: Path) -> None:
    root = corpus(tmp_path)
    cache_file = tmp_path / "analysis-cache.json"
    config = everywhere(root)
    run(root, cache=ResultCache(cache_file, config))

    (root / "noisy.py").unlink()
    run(root, cache=ResultCache(cache_file, config))
    document = json.loads(cache_file.read_text())
    assert document["version"] == CACHE_VERSION
    assert sorted(document["entries"]) == ["clean.py"]


def test_corrupt_cache_file_is_ignored(tmp_path: Path) -> None:
    root = corpus(tmp_path)
    cache_file = tmp_path / "analysis-cache.json"
    cache_file.write_text("{not json")
    cache = ResultCache(cache_file, everywhere(root))
    assert len(cache) == 0
    assert run(root, cache=cache) == run(root)


def test_parallel_jobs_match_serial_results(tmp_path: Path) -> None:
    root = corpus(tmp_path)
    (root / "also_noisy.py").write_text("import time\n\n\ndef f():\n    return time.time()\n")
    serial = run(root, jobs=1)
    parallel = run(root, jobs=2)
    assert parallel == serial
    assert serial[1] == len(iter_python_files([root], everywhere(root)))
