"""The repository must pass its own static checker — the lint gate as a test.

CI runs ``python -m repro.analysis src tests benchmarks`` as a hard gate;
this test keeps that guarantee inside the regular pytest suite too, so a
violation (or a stale suppression) fails locally before it fails in CI.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis import analyze_paths, load_config

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_repository_is_lint_clean() -> None:
    config = load_config(REPO_ROOT)
    targets = [REPO_ROOT / name for name in ("src", "tests", "benchmarks", "examples")]
    violations, files_scanned = analyze_paths(targets, config)
    assert files_scanned > 100, "scanner found suspiciously few files"
    rendered = "\n".join(violation.render() for violation in violations)
    assert not violations, f"repository is not lint-clean:\n{rendered}"
