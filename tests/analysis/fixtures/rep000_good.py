"""REP000 fixture: a well-formed suppression — codes listed, rationale given,
and a real violation on the line to consume it."""


def half_life(decay):
    return decay == 0.5  # repro: noqa[REP005] -- protocol constant compared for identity, never computed
