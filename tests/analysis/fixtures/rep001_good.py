"""REP001 fixture: every backend status is checked before moving on."""

from repro.exceptions import SolverError


def apply_edits(highs, program, rows, lowers, uppers, kError):
    status = highs.addRows(len(rows), lowers, uppers)
    if status == kError:
        raise SolverError(f"{program.name}: HiGHS rejected a constraint batch")


def solve(highs, ensure_ok, program):
    ensure_ok(highs.run(), "run", program.name)
    return highs.getModelStatus()
