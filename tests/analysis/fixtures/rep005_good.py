"""REP005 fixture: tolerant comparisons, and exact ones where exactness holds."""

import math


def level_converged(level, target, eps):
    return math.isclose(level, target, abs_tol=eps)


def share_is_half(used, capacity):
    return abs(used / capacity - 0.5) < 1e-9


def untouched(level, baseline):
    # Comparing a stored, unmodified float is well-defined.
    return level == baseline


def is_idle(allocation):
    return allocation == 0.0
