"""A closed delta union with three registered variants."""

from typing import Union


class Added:
    pass


class Removed:
    pass


class Refined:
    pass


Delta = Union[Added, Removed, Refined]
