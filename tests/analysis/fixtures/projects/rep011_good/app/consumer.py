"""Dispatchers that are exhaustive or carry an explicit fallback."""

from app.deltas import Added, Delta, Refined, Removed


def exhaustive_chain(delta: Delta) -> str:
    if isinstance(delta, Added):
        return "added"
    elif isinstance(delta, Removed):
        return "removed"
    elif isinstance(delta, Refined):
        return "refined"
    return "unreachable"


def partial_with_fallback(delta: Delta) -> str:
    if isinstance(delta, Added):
        return "added"
    elif isinstance(delta, Removed):
        return "removed"
    else:
        return "everything else"


def exhaustive_match(delta: Delta) -> str:
    match delta:
        case Added():
            return "added"
        case Removed() | Refined():
            return "churn"
    return "unreachable"


def partial_match_with_wildcard(delta: Delta) -> str:
    match delta:
        case Added():
            return "added"
        case _:
            return "everything else"
