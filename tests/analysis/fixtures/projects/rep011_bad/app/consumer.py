"""Dispatchers that silently drop a registered variant."""

from app.deltas import Added, Delta, Refined, Removed


def incomplete_chain(delta: Delta) -> str:
    if isinstance(delta, Added):  # expect[REP011]
        return "added"
    elif isinstance(delta, Removed):
        return "removed"
    return "ignored"


def incomplete_match(delta: Delta) -> str:
    match delta:  # expect[REP011]
        case Added():
            return "added"
        case Refined():
            return "refined"
    return "ignored"
