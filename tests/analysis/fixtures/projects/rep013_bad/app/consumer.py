"""Imports only one of the three exports; `blessed` is allow-listed."""

from app.tools import used


def call() -> int:
    return used()
