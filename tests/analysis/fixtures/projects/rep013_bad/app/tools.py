"""Exports where one name is genuinely dead."""

__all__ = ["used", "dead", "blessed"]  # expect[REP013]


def used() -> int:
    return 1


def dead() -> int:
    return 2


def blessed() -> int:
    return 3
