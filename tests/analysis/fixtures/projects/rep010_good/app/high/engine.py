"""Top layer: importing downward follows the declared edge."""

import app.low


class Engine:
    def run(self) -> int:
        return app.low.helper(self)
