"""Bottom layer: annotation-only upward references are exempt."""

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from app.high.engine import Engine


def helper(engine: "Engine") -> int:
    return 1
