"""Scheduler state with a field the snapshot never captures."""

from dataclasses import dataclass


@dataclass
class Snap:
    time: float
    queue: list
    rng_state: dict


class Sched:
    def __init__(self) -> None:
        self._time = 0.0
        self._queue: list = []
        self._rng = {"state": 1}
        self._oracle = object()
        self._lost_counter = 0  # expect[REP012]

    def tick(self) -> None:
        self._lost_counter += 1

    def snapshot(self) -> Snap:
        return Snap(time=self._time, queue=list(self._queue), rng_state=dict(self._rng))
