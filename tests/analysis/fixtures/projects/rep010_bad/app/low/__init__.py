"""Bottom layer: may not import upward."""

import app.high.engine  # expect[REP010]
from app.high import engine  # expect[REP010]


def helper() -> int:
    return engine.run()
