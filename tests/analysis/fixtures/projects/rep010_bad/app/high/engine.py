"""Top layer: importing downward is fine."""

import app.low


def run() -> int:
    return 1 if app.low else 0
