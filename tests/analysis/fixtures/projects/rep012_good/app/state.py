"""Scheduler state fully accounted for by the snapshot contract."""

from dataclasses import dataclass


@dataclass
class Snap:
    time: float
    queue: list
    lost_counter: int
    rng_state: dict


class Sched:
    def __init__(self) -> None:
        self._time = 0.0
        self._queue: list = []
        self._rng = {"state": 1}
        self._oracle = object()  # soft state: rebuilt by restore()
        self._lost_counter = 0

    def tick(self) -> None:
        self._lost_counter += 1

    def snapshot(self) -> Snap:
        return Snap(
            time=self._time,
            queue=list(self._queue),
            lost_counter=self._lost_counter,
            rng_state=dict(self._rng),
        )
