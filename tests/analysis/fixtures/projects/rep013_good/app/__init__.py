"""Package re-exports stay alive through any import path to the symbol."""

from app.tools import attr_used, used

__all__ = ["attr_used", "used"]
