"""Every export here has an external consumer."""

__all__ = ["attr_used", "used"]


def used() -> int:
    return 1


def attr_used() -> int:
    return 2
