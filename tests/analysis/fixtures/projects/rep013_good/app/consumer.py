"""Uses one export by from-import and one by attribute reference."""

import app.tools
from app.tools import used


def call() -> int:
    return used() + app.tools.attr_used()
