"""REP000 fixture: suppression-comment misuse."""


def exact_zero(allocation):
    return allocation == 0  # repro: noqa[REP005] -- integral compare is fine  # expect[REP000]


def blanket(jobs=[]):  # repro: noqa  # expect[REP000] expect[REP006]
    return jobs


def no_rationale(jobs=[]):  # repro: noqa[REP006]  # expect[REP000]
    return jobs


def typo_code(jobs=[]):  # repro: noqa[REP06] -- typo'd code suppresses nothing  # expect[REP000] expect[REP006]
    return jobs
