"""REP009 fixture: heap pushes whose entries lack a sequence tiebreak."""

import heapq


def queue_arrival(pending, arrival_time, job):
    heapq.heappush(pending, (arrival_time, job))  # expect[REP009]


def queue_event(heap, when, payload):
    heapq.heappush(heap, (when, "cancel", payload))  # expect[REP009]


def queue_opaque(heap, entry):
    heapq.heappush(heap, entry)  # expect[REP009]


def rotate(heap, when, payload):
    return heapq.heappushpop(heap, (when, payload))  # expect[REP009]
