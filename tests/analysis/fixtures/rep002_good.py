"""REP002 fixture: time flows only through the scheduler's pluggable Clock."""

import time as _time
from datetime import timezone
from datetime import datetime


def round_deadline(clock, round_duration):
    return clock.now() + round_duration


def benchmark_sample():
    # perf_counter feeds performance metrics, never scheduling decisions.
    return _time.perf_counter()


def audit_stamp():
    # tz-aware now is an explicit choice, not ambient wall clock (REP002
    # covers only the arg-less form).
    return datetime.now(timezone.utc)
