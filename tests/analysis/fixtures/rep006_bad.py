"""REP006 fixture: mutable defaults shared across calls."""


def submit_jobs(scheduler, jobs=[]):  # expect[REP006]
    scheduler.extend(jobs)


def make_config(overrides={}):  # expect[REP006]
    return dict(overrides)


def track(seen=set()):  # expect[REP006]
    return seen


def batch(queue=list()):  # expect[REP006]
    return queue
