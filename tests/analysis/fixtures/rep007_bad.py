"""REP007 fixture: reaching into another object's solver internals."""


def poke_backend(session, values):
    session._program.set_objective(values)  # expect[REP007]


def hot_patch(backend, option):
    backend._highs.getOptionValue(option)  # expect[REP007]


def chained(scheduler):
    return scheduler.session._program  # expect[REP007]
