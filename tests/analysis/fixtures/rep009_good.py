"""REP009 fixture: every heap entry carries a monotone sequence tiebreak."""

import heapq
import itertools

_COUNTER = itertools.count()


class EventQueue:
    def __init__(self):
        self._heap = []
        self._event_seq = 0

    def push(self, when, payload):
        heapq.heappush(self._heap, (when, self._event_seq, payload))
        self._event_seq += 1


def queue_with_counter(heap, when, payload):
    heapq.heappush(heap, (when, next(_COUNTER), payload))


def rotate(heap, when, seq, payload):
    return heapq.heappushpop(heap, (when, seq, payload))
