"""The PR 6 ignored-``addRows``-status bug, verbatim.

This is the exact pre-fix shape of ``_HighsBackend._apply_edits`` (as merged
in PR 4, commit ``ca1de24``): HiGHS rejected a whole row batch — a duplicate
column in one row — returned ``kError``, and the backend carried on.  The
model silently desynchronised from the program and capacity was
oversubscribed until a downstream test happened to trip over it.  REP001
exists so this shape can never come back quietly.
"""

import numpy as np


def _apply_edits(self, program, highs, add):
    fragments = [program._constraints[h].fragment() for h in add]
    counts = np.fromiter((len(f[0]) for f in fragments), np.int64, count=len(add))
    starts = np.zeros(len(add) + 1, np.int64)
    np.cumsum(counts, out=starts[1:])
    indices = (
        np.concatenate([f[0] for f in fragments]) if len(add) else np.empty(0, np.int64)
    )
    values = (
        np.concatenate([f[1] for f in fragments]) if len(add) else np.empty(0)
    )
    lowers = np.fromiter(
        (program._constraints[h].lower for h in add), float, count=len(add)
    )
    uppers = np.fromiter(
        (program._constraints[h].upper for h in add), float, count=len(add)
    )
    highs.addRows(  # expect[REP001]
        len(add),
        lowers,
        uppers,
        int(counts.sum()),
        starts[:-1].astype(np.int32),
        indices.astype(np.int32),
        values.astype(float),
    )
    base = len(self._row_handles)
    self._row_handles.extend(add)
    for offset, handle in enumerate(add):
        self._row_of[handle] = base + offset
