"""REP008 fixture: __all__ lists exactly the public surface."""

__all__ = ["Policy", "compute_allocation"]


class Policy:
    pass


def compute_allocation(problem):
    return problem


def _internal(problem):
    return problem
