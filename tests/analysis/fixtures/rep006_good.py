"""REP006 fixture: None defaults, constructed per call."""

from typing import Optional


def submit_jobs(scheduler, jobs: Optional[list] = None) -> None:
    scheduler.extend(jobs if jobs is not None else [])


def make_config(overrides: Optional[dict] = None) -> dict:
    return dict(overrides or {})


def label(name: str = "default", count: int = 0, scale: float = 1.0) -> str:
    return f"{name}:{count}:{scale}"
