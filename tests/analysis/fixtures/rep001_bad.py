"""REP001 fixture: solver-backend status codes that nobody checks."""

import numpy as np


def apply_edits(highs, program, rows, lowers, uppers):
    highs.addRows(len(rows), lowers, uppers)  # expect[REP001]
    highs.changeCoeff(0, 1, 2.5)  # expect[REP001]


def solve(self, program):
    status = self._highs.run()  # expect[REP001]
    return np.asarray(self._highs.getSolution().col_value, dtype=float)
