"""REP005 fixture: tolerance-blind float equality on computed values."""


def level_converged(level, target, weight, t_star):
    return level + weight * 0.3 == target  # expect[REP005]


def share_is_half(used, capacity):
    return used / capacity == 0.5  # expect[REP005]


def drifted(level, baseline):
    return level != baseline * 1.1  # expect[REP005]
