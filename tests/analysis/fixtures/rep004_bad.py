"""REP004 fixture: set iteration order leaking into ordered results."""


def remove_stale_rows(engine, old_rows: set, new_rows: set):
    for combination in old_rows - new_rows:  # expect[REP004]
        engine.remove(combination)


def insert_pair_rows(engine, job_types: frozenset):
    for job_type in job_types:  # expect[REP004]
        engine.ensure_row(job_type)


def collect(job_ids):
    pending = set(job_ids)
    return [job_id for job_id in pending]  # expect[REP004]


def level_updates(levels, active: set, step):
    return {job_id: levels[job_id] + step for job_id in active}  # expect[REP004]
