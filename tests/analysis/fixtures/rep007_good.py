"""REP007 fixture: internals touched only by their owner (self/cls)."""


class Session:
    def __init__(self, program) -> None:
        self._program = program

    def solve(self):
        # The owner edits its own program through the mutation handles.
        return self._program.solve()


def go_through_the_api(session, delta):
    session.update(delta)
    return session.solve()
