"""REP008 fixture: __all__ drifted away from the module surface."""

__all__ = [  # expect[REP008] expect[REP008]
    "compute_allocation",
    "compute_allocation",
    "removed_long_ago",
]


def compute_allocation(problem):
    return problem


def leaked_public_helper(problem):  # expect[REP008]
    return problem


def _private_helper(problem):
    return problem
