"""REP003 fixture: every random draw comes from an explicitly seeded generator."""

import random

import numpy as np


def sample_durations(seed, count):
    rng = np.random.default_rng(seed)
    return rng.exponential(scale=1.0, size=count)


def shuffle_jobs(jobs, seed):
    random.Random(seed).shuffle(jobs)
    return jobs
