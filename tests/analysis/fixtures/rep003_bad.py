"""REP003 fixture: randomness that cannot be replayed."""

import random

import numpy as np


def jitter():
    return random.random()  # expect[REP003]


def shuffle_jobs(jobs):
    random.shuffle(jobs)  # expect[REP003]
    return jobs


def sample_durations(count):
    return np.random.exponential(scale=1.0, size=count)  # expect[REP003]


def fresh_generator():
    return np.random.default_rng()  # expect[REP003]
