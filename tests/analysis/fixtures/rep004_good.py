"""REP004 fixture: ordering guards in front of every set consumption."""


def remove_stale_rows(engine, old_rows, new_rows):
    for combination in sorted(old_rows - new_rows):
        engine.remove(combination)


def dedup_in_order(job_ids):
    # dict.fromkeys is the order-preserving dedup; no set order involved.
    for job_id in dict.fromkeys(job_ids):
        yield job_id


def bound(levels, active: set):
    # Order-insensitive reductions over a set are fine.
    return min(levels[job_id] for job_id in active)


def membership(pending: set, job_id):
    return job_id in pending
