"""REP002 fixture: ambient wall-clock reads outside the clock module."""

import time as _time
from datetime import datetime
from time import monotonic


def round_deadline(round_duration):
    return _time.time() + round_duration  # expect[REP002]


def lease_epoch():
    return monotonic()  # expect[REP002]


def submitted_at():
    return datetime.now()  # expect[REP002]
