"""Golden tests driving the fixture corpus through the analysis engine.

Every per-file rule has at least one known-bad and one known-good fixture
under ``fixtures/``.  Expected violations are annotated in the fixture
source itself with ``# expect[REP0xx]`` markers on the offending line, so
each fixture is self-documenting; the driver asserts exact agreement (code
and line, as a multiset) and — the part that guards the *rules* — that
disabling a rule makes its fixture findings disappear.

Whole-program rules (REP010+) get *directory* fixtures under
``fixtures/projects/``: each ``*_bad``/``*_good`` directory is a miniature
project with its own ``pyproject.toml`` (layer DAG, rule options) and is
driven through :func:`analyze_paths`, the only entry point that runs the
cross-module phase.
"""

from __future__ import annotations

import dataclasses
import re
from collections import Counter
from pathlib import Path

import pytest

from repro.analysis import AnalysisConfig, RuleSettings, analyze_file, analyze_paths, load_config
from repro.analysis.rules import RULE_CLASSES
from repro.analysis.violations import SUPPRESSION_CODE

FIXTURES = Path(__file__).parent / "fixtures"
PROJECT_FIXTURES = FIXTURES / "projects"

_EXPECT = re.compile(r"expect\[(REP\d{3})\]")


def permissive_config(**overrides: object) -> AnalysisConfig:
    """Config that runs every rule everywhere (fixtures sit outside the
    library paths the pyproject scoping targets)."""
    return AnalysisConfig(
        root=FIXTURES,
        rules={code: RuleSettings(include=()) for code in RULE_CLASSES},
        **overrides,  # type: ignore[arg-type]
    )


def expected_markers(path: Path) -> Counter:
    expected: Counter = Counter()
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        for code in _EXPECT.findall(line):
            expected[(code, lineno)] += 1
    return expected


def found_violations(path: Path, config: AnalysisConfig) -> Counter:
    report = analyze_file(path, config)
    return Counter((violation.code, violation.line) for violation in report.violations)


def all_fixtures(suffix: str) -> list[Path]:
    found = sorted(FIXTURES.glob(f"*_{suffix}.py"))
    assert found, f"no *_{suffix}.py fixtures found"
    return found


@pytest.mark.parametrize("path", all_fixtures("bad"), ids=lambda p: p.stem)
def test_bad_fixture_matches_markers(path: Path) -> None:
    expected = expected_markers(path)
    assert expected, f"{path.name} has no expect[...] markers"
    assert found_violations(path, permissive_config()) == expected


@pytest.mark.parametrize("path", all_fixtures("good"), ids=lambda p: p.stem)
def test_good_fixture_is_clean(path: Path) -> None:
    assert found_violations(path, permissive_config()) == Counter()


def _codes_in(path: Path) -> set[str]:
    return {code for code, _line in expected_markers(path)}


@pytest.mark.parametrize("path", all_fixtures("bad"), ids=lambda p: p.stem)
def test_bad_fixture_goes_quiet_when_rules_disabled(path: Path) -> None:
    """The fixture's signal must come from the rules, not the engine."""
    codes = _codes_in(path)
    config = permissive_config(ignore=frozenset(codes))
    remaining = {code for code, _line in found_violations(path, config)}
    assert not remaining & codes


def all_project_fixtures(suffix: str) -> list[Path]:
    found = sorted(
        path for path in PROJECT_FIXTURES.glob(f"*_{suffix}") if path.is_dir()
    )
    assert found, f"no projects/*_{suffix} fixtures found"
    return found


def project_markers(project: Path) -> Counter:
    expected: Counter = Counter()
    for path in sorted(project.rglob("*.py")):
        rel = path.relative_to(project).as_posix()
        for (code, lineno), count in expected_markers(path).items():
            expected[(code, rel, lineno)] += count
    return expected


def project_violations(project: Path, ignore: frozenset = frozenset()) -> Counter:
    config = load_config(project)
    if ignore:
        config = dataclasses.replace(config, ignore=config.ignore | ignore)
    violations, _files = analyze_paths([project], config)
    return Counter(
        (violation.code, violation.path, violation.line) for violation in violations
    )


@pytest.mark.parametrize("project", all_project_fixtures("bad"), ids=lambda p: p.name)
def test_bad_project_fixture_matches_markers(project: Path) -> None:
    expected = project_markers(project)
    assert expected, f"{project.name} has no expect[...] markers"
    assert project_violations(project) == expected


@pytest.mark.parametrize("project", all_project_fixtures("good"), ids=lambda p: p.name)
def test_good_project_fixture_is_clean(project: Path) -> None:
    assert project_violations(project) == Counter()


@pytest.mark.parametrize("project", all_project_fixtures("bad"), ids=lambda p: p.name)
def test_bad_project_fixture_goes_quiet_when_rules_disabled(project: Path) -> None:
    codes = {code for code, _rel, _line in project_markers(project)}
    remaining = {
        code
        for code, _rel, _line in project_violations(project, ignore=frozenset(codes))
    }
    assert not remaining & codes


@pytest.mark.parametrize("code", sorted(RULE_CLASSES), ids=str)
def test_every_rule_has_fixture_coverage(code: str) -> None:
    """Each registered rule is exercised by at least one bad-fixture marker."""
    covered = set()
    for path in all_fixtures("bad"):
        covered |= _codes_in(path)
    for project in all_project_fixtures("bad"):
        covered |= {code for code, _rel, _line in project_markers(project)}
    assert code in covered


def test_pr6_regression_fixture_is_flagged() -> None:
    """The verbatim PR 6 ignored-addRows-status code trips REP001."""
    path = FIXTURES / "rep001_pr6_regression.py"
    found = found_violations(path, permissive_config())
    assert any(code == "REP001" for code, _line in found)


def test_suppression_code_counts_as_covered() -> None:
    """REP000 (suppression hygiene) has dedicated bad/good fixtures."""
    assert _codes_in(FIXTURES / "rep000_bad.py") >= {SUPPRESSION_CODE}
