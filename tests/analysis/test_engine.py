"""Engine-level tests: file scanning, suppression lifecycle, path expansion."""

from __future__ import annotations

from pathlib import Path

from repro.analysis import AnalysisConfig, RuleSettings, analyze_file, analyze_paths
from repro.analysis.engine import iter_python_files
from repro.analysis.rules import RULE_CLASSES
from repro.analysis.violations import PARSE_ERROR_CODE, SUPPRESSION_CODE


def everywhere(root: Path, **overrides: object) -> AnalysisConfig:
    return AnalysisConfig(
        root=root,
        rules={code: RuleSettings(include=()) for code in RULE_CLASSES},
        **overrides,  # type: ignore[arg-type]
    )


def write(tmp_path: Path, name: str, source: str) -> Path:
    target = tmp_path / name
    target.write_text(source)
    return target


def codes(report) -> list:
    return [violation.code for violation in report.violations]


def test_syntax_error_reports_rep999(tmp_path: Path) -> None:
    bad = write(tmp_path, "broken.py", "def f(:\n")
    report = analyze_file(bad, everywhere(tmp_path))
    assert codes(report) == [PARSE_ERROR_CODE]
    assert report.violations[0].line == 1


def test_clean_file_reports_nothing(tmp_path: Path) -> None:
    good = write(tmp_path, "ok.py", "def f(x):\n    return x\n")
    assert codes(analyze_file(good, everywhere(tmp_path))) == []


def test_violation_found_and_suppressed(tmp_path: Path) -> None:
    noisy = write(tmp_path, "noisy.py", "def f(xs=[]):\n    return xs\n")
    report = analyze_file(noisy, everywhere(tmp_path))
    assert codes(report) == ["REP006"]

    quiet = write(
        tmp_path,
        "quiet.py",
        "def f(xs=[]):  # repro: noqa[REP006] -- sentinel never mutated\n    return xs\n",
    )
    assert codes(analyze_file(quiet, everywhere(tmp_path))) == []


def test_unused_suppression_flagged_only_when_rule_active(tmp_path: Path) -> None:
    source = "def f(x):  # repro: noqa[REP006] -- nothing here\n    return x\n"
    target = write(tmp_path, "stale.py", source)
    report = analyze_file(target, everywhere(tmp_path))
    assert codes(report) == [SUPPRESSION_CODE]

    # With REP006 ignored for this run, the engine cannot know whether the
    # suppression would have been used, so it must not cry "unused".
    relaxed = everywhere(tmp_path, ignore=frozenset({"REP006"}))
    assert codes(analyze_file(target, relaxed)) == []


def test_select_limits_rules(tmp_path: Path) -> None:
    both = write(
        tmp_path,
        "both.py",
        "import time\n\n\ndef f(xs=[]):\n    return time.time(), xs\n",
    )
    config = everywhere(tmp_path, select=frozenset({"REP002", SUPPRESSION_CODE}))
    assert codes(analyze_file(both, config)) == ["REP002"]


def test_violations_sorted_by_position(tmp_path: Path) -> None:
    target = write(
        tmp_path,
        "multi.py",
        "import time\n\n\ndef f(xs=[]):\n    return time.time(), xs\n",
    )
    report = analyze_file(target, everywhere(tmp_path))
    assert codes(report) == ["REP006", "REP002"]
    assert [violation.line for violation in report.violations] == [4, 5]


def test_iter_python_files_expands_and_excludes(tmp_path: Path) -> None:
    write(tmp_path, "a.py", "")
    (tmp_path / "__pycache__").mkdir()
    write(tmp_path / "__pycache__", "cached.py", "")
    (tmp_path / "vendored").mkdir()
    write(tmp_path / "vendored", "third_party.py", "")
    (tmp_path / ".hidden").mkdir()
    write(tmp_path / ".hidden", "secret.py", "")
    (tmp_path / "notes.txt").write_text("")

    config = AnalysisConfig(root=tmp_path, exclude=("__pycache__", "vendored/"))
    found = iter_python_files([tmp_path], config)
    assert [path.name for path in found] == ["a.py"]


def test_explicit_file_bypasses_excludes(tmp_path: Path) -> None:
    excluded_dir = tmp_path / "vendored"
    excluded_dir.mkdir()
    target = write(excluded_dir, "third_party.py", "")
    config = AnalysisConfig(root=tmp_path, exclude=("vendored/",))
    assert iter_python_files([target], config) == [target]


def test_analyze_paths_aggregates(tmp_path: Path) -> None:
    write(tmp_path, "one.py", "def f(xs=[]):\n    return xs\n")
    write(tmp_path, "two.py", "def g(ys={}):\n    return ys\n")
    violations, files_scanned = analyze_paths([tmp_path], everywhere(tmp_path))
    assert files_scanned == 2
    assert sorted(violation.path for violation in violations) == ["one.py", "two.py"]


MULTILINE = (
    "import time\n"
    "\n"
    "value = max(  # repro: noqa[REP002] -- frozen test input\n"
    "    0.0,\n"
    "    time.time(),\n"
    ")\n"
)


def test_suppression_on_statement_start_covers_continuation_lines(tmp_path: Path) -> None:
    """A noqa on the first line of a wrapped statement suppresses violations
    reported on its continuation lines (the violation node's own lineno)."""
    target = write(tmp_path, "wrapped.py", MULTILINE)
    assert codes(analyze_file(target, everywhere(tmp_path))) == []


def test_suppression_on_interior_line_does_not_match(tmp_path: Path) -> None:
    source = MULTILINE.replace(
        "value = max(  # repro: noqa[REP002] -- frozen test input", "value = max("
    ).replace("    0.0,", "    0.0,  # repro: noqa[REP002] -- wrong line")
    target = write(tmp_path, "wrapped.py", source)
    report = analyze_file(target, everywhere(tmp_path))
    # The violation survives and the misplaced suppression is flagged unused.
    assert sorted(codes(report)) == [SUPPRESSION_CODE, "REP002"]


def test_project_rule_violation_is_suppressible(tmp_path: Path) -> None:
    """Suppressions apply to whole-program findings too (REP013 here)."""
    (tmp_path / "pyproject.toml").write_text(
        '[tool.repro.analysis]\nselect = ["REP013"]\n\n'
        "[tool.repro.analysis.REP013]\ninclude = []\n"
    )
    write(tmp_path, "mod.py", '__all__ = ["dead"]\n\n\ndef dead() -> None: ...\n')
    from repro.analysis import load_config

    config = load_config(tmp_path)
    violations, _files = analyze_paths([tmp_path], config)
    assert [violation.code for violation in violations] == ["REP013"]

    write(
        tmp_path,
        "mod.py",
        '__all__ = ["dead"]  # repro: noqa[REP013] -- external entry point\n'
        "\n\ndef dead() -> None: ...\n",
    )
    violations, _files = analyze_paths([tmp_path], config)
    assert violations == []
