"""Unit tests for analysis configuration loading and path scoping."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.config import (
    DEFAULT_EXCLUDE,
    AnalysisConfig,
    LayerSpec,
    RuleSettings,
    find_project_root,
    load_config,
    path_matches,
)
from repro.exceptions import ConfigurationError


def write_pyproject(tmp_path: Path, body: str) -> Path:
    target = tmp_path / "pyproject.toml"
    target.write_text(body)
    return target


class TestPathMatches:
    def test_exact_file(self) -> None:
        assert path_matches("src/a.py", ["src/a.py"])

    def test_directory_prefix(self) -> None:
        assert path_matches("src/repro/core/policy.py", ["src/repro/core"])

    def test_sibling_directory_not_matched(self) -> None:
        assert not path_matches("src/repro/core_ext/x.py", ["src/repro/core"])

    def test_empty_prefixes(self) -> None:
        assert not path_matches("src/a.py", [])


class TestLoadConfig:
    def test_missing_file_yields_defaults(self, tmp_path: Path) -> None:
        config = load_config(tmp_path)
        assert config.exclude == DEFAULT_EXCLUDE
        assert config.select is None
        assert config.ignore == frozenset()
        assert config.rules == {}

    def test_global_keys(self, tmp_path: Path) -> None:
        write_pyproject(
            tmp_path,
            '[tool.repro.analysis]\nexclude = ["vendored"]\nignore = ["REP005"]\n',
        )
        config = load_config(tmp_path)
        assert "vendored" in config.exclude
        assert DEFAULT_EXCLUDE[0] in config.exclude
        assert config.ignore == frozenset({"REP005"})

    def test_rule_table(self, tmp_path: Path) -> None:
        write_pyproject(
            tmp_path,
            "[tool.repro.analysis.REP002]\n"
            'include = ["src"]\n'
            "enabled = true\n"
            'allowed_modules = ["src/repro/scheduler/clock.py"]\n',
        )
        config = load_config(tmp_path)
        settings = config.rule_settings("REP002")
        assert settings.include == ("src",)
        assert settings.options == {"allowed_modules": ["src/repro/scheduler/clock.py"]}

    def test_unknown_top_level_key_rejected(self, tmp_path: Path) -> None:
        write_pyproject(tmp_path, '[tool.repro.analysis]\nexclud = ["typo"]\n')
        with pytest.raises(ConfigurationError, match="unknown key"):
            load_config(tmp_path)

    def test_non_bool_enabled_rejected(self, tmp_path: Path) -> None:
        write_pyproject(tmp_path, '[tool.repro.analysis.REP001]\nenabled = "yes"\n')
        with pytest.raises(ConfigurationError, match="enabled must be a bool"):
            load_config(tmp_path)

    def test_non_string_list_rejected(self, tmp_path: Path) -> None:
        write_pyproject(tmp_path, "[tool.repro.analysis]\nexclude = [1]\n")
        with pytest.raises(ConfigurationError, match="list of strings"):
            load_config(tmp_path)

    def test_invalid_toml_rejected(self, tmp_path: Path) -> None:
        write_pyproject(tmp_path, "[tool.repro.analysis\n")
        with pytest.raises(ConfigurationError, match="invalid TOML"):
            load_config(tmp_path)


class TestCodeEnabled:
    def test_ignore_wins(self) -> None:
        config = AnalysisConfig(root=Path("."), ignore=frozenset({"REP001"}))
        assert not config.code_enabled("REP001")
        assert config.code_enabled("REP002")

    def test_select_restricts(self) -> None:
        config = AnalysisConfig(root=Path("."), select=frozenset({"REP001"}))
        assert config.code_enabled("REP001")
        assert not config.code_enabled("REP002")

    def test_rule_enabled_false(self) -> None:
        config = AnalysisConfig(
            root=Path("."), rules={"REP001": RuleSettings(enabled=False)}
        )
        assert not config.code_enabled("REP001")


class TestScoped:
    def test_rule_defaults_apply(self) -> None:
        config = AnalysisConfig(root=Path("."))
        assert config.scoped("REP004", "src/repro/core/policy.py", ("src/repro/core",), ())
        assert not config.scoped("REP004", "tests/test_x.py", ("src/repro/core",), ())

    def test_config_include_overrides_defaults(self) -> None:
        config = AnalysisConfig(
            root=Path("."), rules={"REP004": RuleSettings(include=())}
        )
        assert config.scoped("REP004", "tests/test_x.py", ("src/repro/core",), ())

    def test_exclude_beats_include(self) -> None:
        config = AnalysisConfig(
            root=Path("."),
            rules={"REP002": RuleSettings(include=("src",), exclude=("src/legacy",))},
        )
        assert config.scoped("REP002", "src/a.py", (), ())
        assert not config.scoped("REP002", "src/legacy/b.py", (), ())


def test_find_project_root(tmp_path: Path) -> None:
    (tmp_path / "pyproject.toml").write_text("")
    nested = tmp_path / "src" / "pkg"
    nested.mkdir(parents=True)
    assert find_project_root(nested) == tmp_path


def test_find_project_root_absent(tmp_path: Path) -> None:
    nested = tmp_path / "src"
    nested.mkdir()
    # May walk up to a real repo above tmp_path or find nothing; either way
    # it must not claim tmp_path itself, which has no pyproject.toml.
    assert find_project_root(nested) != tmp_path


class TestLayers:
    def layered(self, tmp_path: Path, body: str) -> Path:
        return write_pyproject(
            tmp_path, "[tool.repro.analysis.layers]\n" + body
        ).parent

    def test_layers_parsed_into_specs(self, tmp_path: Path) -> None:
        root = self.layered(
            tmp_path,
            'low = { modules = ["app.low"], imports = [] }\n'
            'high = { modules = ["app.high"], imports = ["low"] }\n',
        )
        config = load_config(root)
        assert config.layers["high"] == LayerSpec(
            name="high", modules=("app.high",), imports=("low",)
        )

    def test_layer_of_uses_longest_prefix(self, tmp_path: Path) -> None:
        root = self.layered(
            tmp_path,
            'outer = { modules = ["app"], imports = [] }\n'
            'inner = { modules = ["app.core"], imports = ["outer"] }\n',
        )
        config = load_config(root)
        assert config.layer_of("app.core.engine") == "inner"
        assert config.layer_of("app.other") == "outer"
        assert config.layer_of("elsewhere") is None

    def test_cycle_rejected(self, tmp_path: Path) -> None:
        root = self.layered(
            tmp_path,
            'a = { modules = ["app.a"], imports = ["b"] }\n'
            'b = { modules = ["app.b"], imports = ["a"] }\n',
        )
        with pytest.raises(ConfigurationError):
            load_config(root)

    def test_self_import_rejected(self, tmp_path: Path) -> None:
        root = self.layered(tmp_path, 'a = { modules = ["app.a"], imports = ["a"] }\n')
        with pytest.raises(ConfigurationError):
            load_config(root)

    def test_undeclared_dependency_rejected(self, tmp_path: Path) -> None:
        root = self.layered(tmp_path, 'a = { modules = ["app.a"], imports = ["ghost"] }\n')
        with pytest.raises(ConfigurationError):
            load_config(root)

    def test_duplicate_module_prefix_rejected(self, tmp_path: Path) -> None:
        root = self.layered(
            tmp_path,
            'a = { modules = ["app.shared"], imports = [] }\n'
            'b = { modules = ["app.shared"], imports = [] }\n',
        )
        with pytest.raises(ConfigurationError):
            load_config(root)

    def test_layerless_layer_rejected(self, tmp_path: Path) -> None:
        root = self.layered(tmp_path, "a = { modules = [], imports = [] }\n")
        with pytest.raises(ConfigurationError):
            load_config(root)

    def test_layers_affect_fingerprint(self, tmp_path: Path) -> None:
        plain = AnalysisConfig(root=tmp_path)
        layered = AnalysisConfig(
            root=tmp_path,
            layers={"a": LayerSpec(name="a", modules=("app",), imports=())},
        )
        assert plain.fingerprint() != layered.fingerprint()
