"""SARIF output: structural guarantees and schema validation.

The embedded schema is a trimmed-but-faithful subset of the official SARIF
2.1.0 JSON schema (no network access in tests): every constraint it encodes
— required properties, types, the version literal, rule/result/location
shapes — is copied from the upstream schema, with unrelated object kinds
omitted.  ``additionalProperties`` stays open exactly as upstream.
"""

from __future__ import annotations

import json

import jsonschema

from repro.analysis import render_sarif
from repro.analysis.rules import RULE_CLASSES
from repro.analysis.violations import Violation

#: Trimmed SARIF 2.1.0 schema: sarifLog → run → tool/driver/rules + results.
SARIF_SCHEMA = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "type": "object",
    "required": ["version", "runs"],
    "properties": {
        "version": {"enum": ["2.1.0"]},
        "$schema": {"type": "string", "format": "uri"},
        "runs": {"type": "array", "items": {"$ref": "#/definitions/run"}},
    },
    "definitions": {
        "run": {
            "type": "object",
            "required": ["tool"],
            "properties": {
                "tool": {
                    "type": "object",
                    "required": ["driver"],
                    "properties": {"driver": {"$ref": "#/definitions/toolComponent"}},
                },
                "results": {
                    "type": "array",
                    "items": {"$ref": "#/definitions/result"},
                },
                "columnKind": {"enum": ["utf16CodeUnits", "unicodeCodePoints"]},
            },
        },
        "toolComponent": {
            "type": "object",
            "required": ["name"],
            "properties": {
                "name": {"type": "string"},
                "informationUri": {"type": "string", "format": "uri"},
                "rules": {
                    "type": "array",
                    "items": {"$ref": "#/definitions/reportingDescriptor"},
                },
            },
        },
        "reportingDescriptor": {
            "type": "object",
            "required": ["id"],
            "properties": {
                "id": {"type": "string"},
                "name": {"type": "string"},
                "shortDescription": {"$ref": "#/definitions/message"},
            },
        },
        "result": {
            "type": "object",
            "required": ["message"],
            "properties": {
                "ruleId": {"type": "string"},
                "ruleIndex": {"type": "integer", "minimum": -1},
                "level": {"enum": ["none", "note", "warning", "error"]},
                "message": {"$ref": "#/definitions/message"},
                "locations": {
                    "type": "array",
                    "items": {"$ref": "#/definitions/location"},
                },
            },
        },
        "message": {
            "type": "object",
            "properties": {"text": {"type": "string"}},
        },
        "location": {
            "type": "object",
            "properties": {
                "physicalLocation": {
                    "type": "object",
                    "properties": {
                        "artifactLocation": {
                            "type": "object",
                            "properties": {
                                "uri": {"type": "string"},
                                "uriBaseId": {"type": "string"},
                            },
                        },
                        "region": {
                            "type": "object",
                            "properties": {
                                "startLine": {"type": "integer", "minimum": 1},
                                "startColumn": {"type": "integer", "minimum": 1},
                            },
                        },
                    },
                },
            },
        },
    },
}


def sample_violations() -> list:
    return [
        Violation(path="src/repro/core/x.py", line=12, col=5, code="REP006", message="mutable default"),
        Violation(path="tests/test_y.py", line=1, col=1, code="REP013", message="dead export"),
    ]


def test_sarif_validates_against_schema() -> None:
    document = json.loads(render_sarif(sample_violations(), files_scanned=2))
    jsonschema.validate(document, SARIF_SCHEMA)


def test_empty_run_validates_and_has_no_results() -> None:
    document = json.loads(render_sarif([], files_scanned=0))
    jsonschema.validate(document, SARIF_SCHEMA)
    assert document["runs"][0]["results"] == []


def test_rule_index_resolves_into_driver_rules() -> None:
    document = json.loads(render_sarif(sample_violations(), files_scanned=2))
    run = document["runs"][0]
    rules = run["tool"]["driver"]["rules"]
    assert len(run["results"]) == 2
    for result in run["results"]:
        assert rules[result["ruleIndex"]]["id"] == result["ruleId"]


def test_every_registered_rule_has_a_descriptor() -> None:
    document = json.loads(render_sarif([], files_scanned=0))
    descriptor_ids = {
        rule["id"] for rule in document["runs"][0]["tool"]["driver"]["rules"]
    }
    assert descriptor_ids >= set(RULE_CLASSES)


def test_result_uris_are_root_relative() -> None:
    document = json.loads(render_sarif(sample_violations(), files_scanned=2))
    for result in document["runs"][0]["results"]:
        location = result["locations"][0]["physicalLocation"]["artifactLocation"]
        assert not location["uri"].startswith(("/", "file:"))
        assert location["uriBaseId"] == "PROJECTROOT"
