"""CLI tests: exit codes, report formats, rule listing, bad input handling."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.cli import main
from repro.analysis.rules import RULE_CLASSES


@pytest.fixture()
def project(tmp_path: Path) -> Path:
    """A tiny standalone project the CLI can discover a root for."""
    (tmp_path / "pyproject.toml").write_text("[tool.repro.analysis]\n")
    return tmp_path


def write(project: Path, name: str, source: str) -> Path:
    target = project / name
    target.write_text(source)
    return target


def test_clean_run_exits_zero(project: Path, capsys) -> None:
    write(project, "ok.py", "def f(x):\n    return x\n")
    assert main([str(project)]) == 0
    assert "0 violations" in capsys.readouterr().out


def test_violations_exit_one(project: Path, capsys) -> None:
    write(project, "bad.py", "def f(xs=[]):\n    return xs\n")
    assert main([str(project)]) == 1
    out = capsys.readouterr().out
    assert "REP006" in out
    assert "bad.py:1:" in out


def test_json_format(project: Path, capsys) -> None:
    write(project, "bad.py", "def f(xs=[]):\n    return xs\n")
    assert main(["--format", "json", str(project)]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["files_scanned"] == 1
    assert payload["violation_count"] == 1
    [violation] = payload["violations"]
    assert violation["code"] == "REP006"
    assert violation["path"] == "bad.py"
    assert violation["line"] == 1


def test_ignore_flag_silences_rule(project: Path) -> None:
    write(project, "bad.py", "def f(xs=[]):\n    return xs\n")
    assert main(["--ignore", "REP006", str(project)]) == 0


def test_select_flag_limits_rules(project: Path) -> None:
    write(project, "bad.py", "def f(xs=[]):\n    return xs\n")
    assert main(["--select", "REP001", str(project)]) == 0
    assert main(["--select", "REP006", str(project)]) == 1


def test_unknown_code_exits_two(project: Path, capsys) -> None:
    write(project, "ok.py", "")
    assert main(["--select", "REP042", str(project)]) == 2
    assert "unknown rule code" in capsys.readouterr().err


def test_missing_path_exits_two(tmp_path: Path, capsys) -> None:
    assert main([str(tmp_path / "nope.py")]) == 2
    assert "no such path" in capsys.readouterr().err


def test_bad_config_exits_two(tmp_path: Path, capsys) -> None:
    (tmp_path / "pyproject.toml").write_text("[tool.repro.analysis]\nbogus = 1\n")
    (tmp_path / "ok.py").write_text("")
    assert main([str(tmp_path / "ok.py"), "--root", str(tmp_path)]) == 2
    assert "unknown key" in capsys.readouterr().err


def test_list_rules_covers_registry(capsys) -> None:
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in RULE_CLASSES:
        assert code in out
    assert "REP000" in out


def test_syntax_error_exits_one(project: Path, capsys) -> None:
    write(project, "broken.py", "def f(:\n")
    assert main([str(project)]) == 1
    assert "REP999" in capsys.readouterr().out
