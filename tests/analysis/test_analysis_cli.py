"""CLI tests: exit codes, report formats, rule listing, bad input handling."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.cli import build_parser, main
from repro.analysis.rules import RULE_CLASSES


@pytest.fixture()
def project(tmp_path: Path) -> Path:
    """A tiny standalone project the CLI can discover a root for."""
    (tmp_path / "pyproject.toml").write_text("[tool.repro.analysis]\n")
    return tmp_path


def write(project: Path, name: str, source: str) -> Path:
    target = project / name
    target.write_text(source)
    return target


def test_clean_run_exits_zero(project: Path, capsys) -> None:
    write(project, "ok.py", "def f(x):\n    return x\n")
    assert main([str(project)]) == 0
    assert "0 violations" in capsys.readouterr().out


def test_violations_exit_one(project: Path, capsys) -> None:
    write(project, "bad.py", "def f(xs=[]):\n    return xs\n")
    assert main([str(project)]) == 1
    out = capsys.readouterr().out
    assert "REP006" in out
    assert "bad.py:1:" in out


def test_json_format(project: Path, capsys) -> None:
    write(project, "bad.py", "def f(xs=[]):\n    return xs\n")
    assert main(["--format", "json", str(project)]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["files_scanned"] == 1
    assert payload["violation_count"] == 1
    [violation] = payload["violations"]
    assert violation["code"] == "REP006"
    assert violation["path"] == "bad.py"
    assert violation["line"] == 1


def test_ignore_flag_silences_rule(project: Path) -> None:
    write(project, "bad.py", "def f(xs=[]):\n    return xs\n")
    assert main(["--ignore", "REP006", str(project)]) == 0


def test_select_flag_limits_rules(project: Path) -> None:
    write(project, "bad.py", "def f(xs=[]):\n    return xs\n")
    assert main(["--select", "REP001", str(project)]) == 0
    assert main(["--select", "REP006", str(project)]) == 1


def test_unknown_code_exits_two(project: Path, capsys) -> None:
    write(project, "ok.py", "")
    assert main(["--select", "REP042", str(project)]) == 2
    assert "unknown rule code" in capsys.readouterr().err


def test_missing_path_exits_two(tmp_path: Path, capsys) -> None:
    assert main([str(tmp_path / "nope.py")]) == 2
    assert "no such path" in capsys.readouterr().err


def test_bad_config_exits_two(tmp_path: Path, capsys) -> None:
    (tmp_path / "pyproject.toml").write_text("[tool.repro.analysis]\nbogus = 1\n")
    (tmp_path / "ok.py").write_text("")
    assert main([str(tmp_path / "ok.py"), "--root", str(tmp_path)]) == 2
    assert "unknown key" in capsys.readouterr().err


def test_list_rules_covers_registry(capsys) -> None:
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in RULE_CLASSES:
        assert code in out
    assert "REP000" in out


def test_syntax_error_exits_one(project: Path, capsys) -> None:
    write(project, "broken.py", "def f(:\n")
    assert main([str(project)]) == 1
    assert "REP999" in capsys.readouterr().out


def test_build_parser_defaults() -> None:
    options = build_parser().parse_args([])
    assert options.paths == ["."]
    assert options.format == "text"
    assert options.jobs == 1
    assert options.baseline is None and options.cache is None


def test_sarif_format(project: Path, capsys) -> None:
    write(project, "bad.py", "def f(xs=[]):\n    return xs\n")
    assert main(["--format", "sarif", str(project)]) == 1
    document = json.loads(capsys.readouterr().out)
    assert document["version"] == "2.1.0"
    [result] = document["runs"][0]["results"]
    assert result["ruleId"] == "REP006"


def test_list_rules_tags_project_rules(capsys) -> None:
    assert main(["--list-rules"]) == 0
    tagged = {
        line.split()[0]
        for line in capsys.readouterr().out.splitlines()
        if "[project]" in line
    }
    assert tagged == {"REP010", "REP011", "REP012", "REP013"}


def test_baseline_write_then_compare(project: Path, capsys) -> None:
    write(project, "bad.py", "def f(xs=[]):\n    return xs\n")
    baseline = project / "baseline.json"

    assert main(["--baseline", str(baseline), "--baseline-mode", "write", str(project)]) == 0
    assert "wrote 1 finding" in capsys.readouterr().err

    # Same corpus: the known finding is absorbed and the run goes green.
    assert main(["--baseline", str(baseline), str(project)]) == 0
    assert "absorbed 1 known finding" in capsys.readouterr().err

    # A new finding elsewhere still fails the run.
    write(project, "worse.py", "def g(ys={}):\n    return ys\n")
    assert main(["--baseline", str(baseline), str(project)]) == 1
    assert "worse.py" in capsys.readouterr().out


def test_baseline_stale_entry_reported(project: Path, capsys) -> None:
    bad = write(project, "bad.py", "def f(xs=[]):\n    return xs\n")
    baseline = project / "baseline.json"
    assert main(["--baseline", str(baseline), "--baseline-mode", "write", str(project)]) == 0
    capsys.readouterr()

    bad.write_text("def f(xs=()):\n    return xs\n")  # finding fixed for real
    assert main(["--baseline", str(baseline), str(project)]) == 0
    assert "stale entry" in capsys.readouterr().err


def test_malformed_baseline_exits_two(project: Path, capsys) -> None:
    write(project, "ok.py", "def f(x):\n    return x\n")
    baseline = write(project, "baseline.json", "{broken")
    assert main(["--baseline", str(baseline), str(project)]) == 2
    assert "baseline" in capsys.readouterr().err


def test_cache_flag_persists_and_reuses_results(project: Path, capsys) -> None:
    write(project, "bad.py", "def f(xs=[]):\n    return xs\n")
    cache = project / ".analysis-cache.json"
    assert main(["--cache", str(cache), str(project)]) == 1
    assert cache.exists()
    first = capsys.readouterr().out
    assert main(["--cache", str(cache), str(project)]) == 1
    assert capsys.readouterr().out == first


def test_jobs_must_be_positive(project: Path, capsys) -> None:
    write(project, "ok.py", "def f(x):\n    return x\n")
    assert main(["--jobs", "0", str(project)]) == 2
    assert "--jobs" in capsys.readouterr().err


def test_jobs_two_matches_serial_output(project: Path, capsys) -> None:
    write(project, "bad.py", "def f(xs=[]):\n    return xs\n")
    write(project, "ok.py", "def f(x):\n    return x\n")
    assert main([str(project)]) == 1
    serial = capsys.readouterr().out
    assert main(["--jobs", "2", str(project)]) == 1
    assert capsys.readouterr().out == serial
