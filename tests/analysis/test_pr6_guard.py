"""Acceptance test: re-introducing the PR 6 bug is caught by REP001.

The PR 6 bug was an ``addRows`` batch whose rejection status nobody checked.
This test performs the *actual revert* on today's ``src/repro/solver/lp.py``
— it strips the ``_ensure_highs_ok`` wrapper off the ``addRows`` call via AST
surgery — and asserts the checker flags the result, while the file as
committed stays clean.  If the wrapper moves or is renamed, the surgery
fails loudly instead of silently testing nothing.
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.analysis import AnalysisConfig, analyze_file

REPO_ROOT = Path(__file__).resolve().parents[2]
LP_PATH = REPO_ROOT / "src" / "repro" / "solver" / "lp.py"


def _find_wrapped_call(tree: ast.Module, source: str, method: str) -> ast.Call:
    """Locate ``_ensure_highs_ok(<receiver>.<method>(...), ...)`` in ``tree``."""
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "_ensure_highs_ok"
            and node.args
            and isinstance(node.args[0], ast.Call)
            and isinstance(node.args[0].func, ast.Attribute)
            and node.args[0].func.attr == method
        ):
            return node
    raise AssertionError(
        f"_ensure_highs_ok wrapper around `{method}` not found in {LP_PATH}; "
        "update this test alongside the backend"
    )


def _revert_status_check(source: str, method: str) -> str:
    """Replace the wrapped call with the bare inner call — the PR 6 shape."""
    tree = ast.parse(source)
    wrapper = _find_wrapped_call(tree, source, method)
    wrapper_text = ast.get_source_segment(source, wrapper)
    inner_text = ast.get_source_segment(source, wrapper.args[0])
    assert wrapper_text is not None and inner_text is not None
    assert source.count(wrapper_text) == 1, "wrapper text is not unique"
    return source.replace(wrapper_text, inner_text)


def _rep001_lines(path: Path, root: Path) -> list:
    report = analyze_file(path, AnalysisConfig(root=root))
    return [violation.line for violation in report.violations if violation.code == "REP001"]


def test_committed_lp_is_clean(tmp_path: Path) -> None:
    assert _rep001_lines(LP_PATH, REPO_ROOT) == []


def test_reverting_add_rows_check_is_flagged(tmp_path: Path) -> None:
    source = LP_PATH.read_text()
    reverted = _revert_status_check(source, "addRows")
    target = tmp_path / "lp_reverted.py"
    target.write_text(reverted)
    flagged = _rep001_lines(target, tmp_path)
    assert flagged, "REP001 must flag the bare addRows call after the revert"


def test_reverting_run_check_is_flagged(tmp_path: Path) -> None:
    source = LP_PATH.read_text()
    reverted = _revert_status_check(source, "run")
    target = tmp_path / "lp_reverted_run.py"
    target.write_text(reverted)
    assert _rep001_lines(target, tmp_path), "REP001 must flag the bare run() call"
