"""Unit tests for the `repro: noqa` suppression scanner."""

from __future__ import annotations

from repro.analysis.suppressions import scan_suppressions


def scan_one(line: str):
    found = scan_suppressions([line])
    assert len(found) == 1
    return found[0]


def test_plain_line_yields_nothing() -> None:
    assert scan_suppressions(["x = 1  # ordinary comment"]) == []


def test_well_formed_suppression() -> None:
    suppression = scan_one("x == 0.1  # repro: noqa[REP005] -- stored constant")
    assert suppression.codes == ("REP005",)
    assert suppression.rationale == "stored constant"
    assert not suppression.blanket
    assert suppression.malformed_codes == ()


def test_multiple_codes() -> None:
    suppression = scan_one("y  # repro: noqa[REP005, REP006] -- both intentional")
    assert suppression.codes == ("REP005", "REP006")


def test_blanket_detected() -> None:
    suppression = scan_one("y  # repro: noqa")
    assert suppression.blanket
    assert suppression.codes == ()


def test_empty_brackets_is_blanket() -> None:
    suppression = scan_one("y  # repro: noqa[] -- why")
    assert suppression.blanket


def test_malformed_code_recorded() -> None:
    suppression = scan_one("y  # repro: noqa[REP06] -- typo")
    assert suppression.malformed_codes == ("REP06",)
    assert suppression.codes == ()
    assert not suppression.blanket


def test_rationale_missing() -> None:
    suppression = scan_one("y  # repro: noqa[REP005]")
    assert suppression.rationale == ""


def test_line_numbers_are_one_indexed() -> None:
    found = scan_suppressions(["", "y  # repro: noqa[REP005] -- why"])
    assert [suppression.line for suppression in found] == [2]


def test_used_bookkeeping() -> None:
    suppression = scan_one("y  # repro: noqa[REP005, REP006] -- why")
    assert suppression.suppresses("REP005")
    assert not suppression.suppresses("REP001")
    suppression.mark_used("REP005")
    assert suppression.unused_codes() == ("REP006",)
