"""Unit tests for the whole-program layer: summaries, context, AST surgery.

The per-file :func:`~repro.analysis.project.summarize_module` extraction and
the aggregated :class:`~repro.analysis.project.ProjectContext` are tested
directly on small synthetic modules; the REP011 exhaustiveness rule is then
proven on the *real* ``repro.core.session`` source by AST surgery — deleting
the ``TypeCountChanged`` branch from ``summarize_deltas`` and asserting the
checker catches exactly the bug class PR 6 shipped.
"""

from __future__ import annotations

import ast
import textwrap
from pathlib import Path

from repro.analysis import FileReport, analyze_file, analyze_paths, load_config
from repro.analysis.config import AnalysisConfig
from repro.analysis.project import (
    ClassSummary,
    DispatchSite,
    ImportRecord,
    ModuleSummary,
    ProjectContext,
    module_name_for,
    summarize_module,
    summary_from_dict,
    summary_to_dict,
)
from repro.analysis.rules import RULE_CLASSES, ProjectRule, Rule
from repro.analysis.rules.base import AnyRuleClass

REPO_ROOT = Path(__file__).resolve().parents[2]
SESSION_SOURCE = REPO_ROOT / "src" / "repro" / "core" / "session.py"


def summarize(rel_path: str, source: str) -> ModuleSummary:
    return summarize_module(rel_path, ast.parse(textwrap.dedent(source)))


class TestModuleNameFor:
    def test_src_layout_stripped(self) -> None:
        assert module_name_for("src/repro/core/session.py") == "repro.core.session"

    def test_package_init_is_the_package(self) -> None:
        assert module_name_for("src/repro/core/__init__.py") == "repro.core"

    def test_paths_outside_source_roots_keep_prefix(self) -> None:
        assert module_name_for("tests/core/test_x.py") == "tests.core.test_x"


class TestSummaryExtraction:
    def test_imports_with_markers(self) -> None:
        summary = summarize(
            "src/pkg/mod.py",
            """\
            from typing import TYPE_CHECKING

            import os.path
            from pkg.other import helper

            if TYPE_CHECKING:
                from pkg.annotations_only import Hint

            def late() -> None:
                from pkg.deferred import thing
                return thing
            """,
        )
        by_target = {record.target: record for record in summary.imports}
        assert isinstance(by_target["pkg.other"], ImportRecord)
        assert by_target["pkg.other"].names == ("helper",)
        assert not by_target["pkg.other"].type_checking
        assert by_target["pkg.annotations_only"].type_checking
        assert by_target["pkg.deferred"].deferred

    def test_dunder_all_and_union(self) -> None:
        summary = summarize(
            "src/pkg/deltas.py",
            """\
            __all__ = ["Added", "Removed", "Delta"]

            class Added: ...
            class Removed: ...

            Delta = Added | Removed
            """,
        )
        assert summary.dunder_all == ("Added", "Removed", "Delta")
        assert summary.unions["Delta"] == ("pkg.deltas.Added", "pkg.deltas.Removed")

    def test_class_summary_fields_and_self_attrs(self) -> None:
        summary = summarize(
            "src/pkg/state.py",
            """\
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class Snap:
                time: float
                rng_state: bytes

            class Sched:
                def __init__(self) -> None:
                    self._time = 0.0
                    self._rng = object()
            """,
        )
        by_name = {cls.name: cls for cls in summary.classes}
        assert isinstance(by_name["Snap"], ClassSummary)
        assert by_name["Snap"].is_dataclass
        assert by_name["Snap"].dataclass_fields == ("time", "rng_state")
        assert dict(by_name["Sched"].self_attrs) == {"_time": 10, "_rng": 11}

    def test_isinstance_chain_and_match_dispatch(self) -> None:
        summary = summarize(
            "src/pkg/consumer.py",
            """\
            from pkg.deltas import Added, Removed

            def fold(delta):
                if isinstance(delta, Added):
                    return 1
                elif isinstance(delta, Removed):
                    return 2

            def fold_match(delta):
                match delta:
                    case Added():
                        return 1
                    case _:
                        return 0
            """,
        )
        by_kind = {site.kind: site for site in summary.dispatches}
        chain = by_kind["isinstance"]
        assert isinstance(chain, DispatchSite)
        assert chain.scope == "fold"
        assert chain.tested == ("pkg.deltas.Added", "pkg.deltas.Removed")
        assert not chain.has_fallback
        assert by_kind["match"].has_fallback

    def test_round_trip_through_dict(self) -> None:
        summary = summarize(
            "src/pkg/mod.py",
            """\
            from pkg.other import helper

            __all__ = ["Widget"]

            class Widget:
                def __init__(self) -> None:
                    self._state = helper()

            def fold(w):
                if isinstance(w, Widget):
                    return w
                elif isinstance(w, helper):
                    return None
            """,
        )
        assert summary_from_dict(summary_to_dict(summary)) == summary


class TestProjectContext:
    def _context(self) -> ProjectContext:
        impl = summarize(
            "src/pkg/impl.py",
            """\
            __all__ = ["Widget", "Gadget"]

            class Widget: ...
            class Gadget: ...

            Thing = Widget | Gadget
            """,
        )
        init = summarize(
            "src/pkg/__init__.py",
            """\
            from pkg.impl import Gadget, Widget

            __all__ = ["Gadget", "Widget"]
            """,
        )
        consumer = summarize(
            "src/app/consumer.py",
            """\
            from pkg import Widget

            def build() -> Widget:
                return Widget()
            """,
        )
        return ProjectContext([impl, init, consumer])

    def test_resolve_symbol_chases_re_exports(self) -> None:
        context = self._context()
        assert context.resolve_symbol("pkg.Widget") == "pkg.impl.Widget"
        assert context.resolve_symbol("pkg.impl.Widget") == "pkg.impl.Widget"
        assert context.resolve_symbol("unknown.Name") == "unknown.Name"

    def test_union_members_resolved(self) -> None:
        context = self._context()
        assert context.union_members("pkg.impl.Thing") == (
            "pkg.impl.Widget",
            "pkg.impl.Gadget",
        )

    def test_usage_counts_through_any_import_path(self) -> None:
        context = self._context()
        # The consumer imports Widget from the package, not from pkg.impl —
        # canonical-symbol tracking must keep both export sites alive.
        assert context.is_name_used_externally("pkg", "Widget")
        assert context.is_name_used_externally("pkg.impl", "Widget")
        assert not context.is_name_used_externally("pkg", "Gadget")

    def test_find_class_and_bases(self) -> None:
        base = summarize("src/pkg/base.py", "class Base: ...\n")
        child = summarize(
            "src/pkg/child.py",
            """\
            from pkg.base import Base

            class Child(Base): ...
            """,
        )
        context = ProjectContext([base, child])
        found = context.find_class("pkg.child.Child")
        assert found is not None and found[1].name == "Child"
        assert context.class_bases("pkg.child.Child") == ("pkg.base.Base",)


class TestRuleRegistry:
    def test_registry_entries_are_rule_classes(self) -> None:
        rule_class: AnyRuleClass
        for code, rule_class in RULE_CLASSES.items():
            assert issubclass(rule_class, (Rule, ProjectRule))
            assert rule_class.code == code

    def test_analyze_file_returns_file_report(self, tmp_path: Path) -> None:
        target = tmp_path / "m.py"
        target.write_text("X = 1\n")
        report = analyze_file(target, AnalysisConfig(root=tmp_path))
        assert isinstance(report, FileReport)
        assert report.path == "m.py"


# -- AST surgery on the real session module --------------------------------------------


def _without_typecount_branch(source: str) -> str:
    """Delete the ``elif isinstance(delta, TypeCountChanged):`` branch."""
    tree = ast.parse(source)
    for node in ast.walk(tree):
        if not isinstance(node, ast.If):
            continue
        test = node.test
        if not (
            isinstance(test, ast.Call)
            and isinstance(test.func, ast.Name)
            and test.func.id == "isinstance"
            and len(test.args) == 2
        ):
            continue
        classinfo = test.args[1]
        if isinstance(classinfo, ast.Name) and classinfo.id == "TypeCountChanged":
            start = node.lineno
            end = max(stmt.end_lineno or stmt.lineno for stmt in node.body)
            lines = source.splitlines(keepends=True)
            return "".join(lines[: start - 1] + lines[end:])
    raise AssertionError("session.py has no isinstance(delta, TypeCountChanged) branch")


def _surgery_project(tmp_path: Path, source: str) -> Path:
    project = tmp_path / "proj"
    (project / "app").mkdir(parents=True)
    (project / "pyproject.toml").write_text(
        "[tool.repro.analysis]\n"
        'select = ["REP011"]\n'
        "\n"
        "[tool.repro.analysis.REP011]\n"
        'union = "app.session.PolicyDelta"\n'
    )
    (project / "app" / "session.py").write_text(source)
    return project


def _rep011_findings(project: Path) -> list:
    violations, _files = analyze_paths([project], load_config(project))
    return [violation for violation in violations if violation.code == "REP011"]


class TestDeltaDispatchSurgery:
    """REP011 must catch a registered delta silently dropped by a dispatcher."""

    def test_pristine_session_module_is_exhaustive(self, tmp_path: Path) -> None:
        project = _surgery_project(tmp_path, SESSION_SOURCE.read_text())
        assert _rep011_findings(project) == []

    def test_deleting_typecount_branch_trips_rep011(self, tmp_path: Path) -> None:
        mutated = _without_typecount_branch(SESSION_SOURCE.read_text())
        assert "counts[delta.key] = delta.count" not in mutated
        project = _surgery_project(tmp_path, mutated)
        findings = _rep011_findings(project)
        assert len(findings) == 1
        finding = findings[0]
        assert finding.path == "app/session.py"
        assert "TypeCountChanged" in finding.message
        assert "summarize_deltas" in finding.message
