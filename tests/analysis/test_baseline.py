"""Baseline write/compare semantics: absorption, new findings, staleness."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import BaselineComparison, compare_baseline, load_baseline, write_baseline
from repro.analysis.baseline import BASELINE_VERSION
from repro.analysis.violations import Violation
from repro.exceptions import ConfigurationError


def violation(path: str = "a.py", line: int = 3, code: str = "REP006", message: str = "m") -> Violation:
    return Violation(path=path, line=line, col=1, code=code, message=message)


def test_write_then_load_round_trips(tmp_path: Path) -> None:
    target = tmp_path / "baseline.json"
    write_baseline(target, [violation(), violation(line=9), violation(code="REP002")])
    loaded = load_baseline(target)
    assert loaded == {
        ("a.py", "REP006", "m"): 2,  # line numbers deliberately not part of the key
        ("a.py", "REP002", "m"): 1,
    }


def test_compare_absorbs_known_and_reports_new(tmp_path: Path) -> None:
    target = tmp_path / "baseline.json"
    write_baseline(target, [violation()])
    fresh = [violation(line=40), violation(code="REP003", message="new finding")]
    comparison = compare_baseline(fresh, load_baseline(target))
    assert isinstance(comparison, BaselineComparison)
    assert comparison.suppressed_count == 1
    assert [v.code for v in comparison.new_violations] == ["REP003"]
    assert comparison.stale == []


def test_count_budget_is_per_fingerprint(tmp_path: Path) -> None:
    target = tmp_path / "baseline.json"
    write_baseline(target, [violation()])
    # Two occurrences of a fingerprint baselined once: one absorbed, one new.
    comparison = compare_baseline([violation(), violation(line=50)], load_baseline(target))
    assert comparison.suppressed_count == 1
    assert len(comparison.new_violations) == 1


def test_stale_entries_surface_with_counts(tmp_path: Path) -> None:
    target = tmp_path / "baseline.json"
    write_baseline(target, [violation(), violation(line=9), violation(code="REP002")])
    comparison = compare_baseline([violation()], load_baseline(target))
    assert comparison.stale == [
        (("a.py", "REP002", "m"), 1),
        (("a.py", "REP006", "m"), 1),
    ]


def test_empty_baseline_absorbs_nothing(tmp_path: Path) -> None:
    target = tmp_path / "baseline.json"
    write_baseline(target, [])
    document = target.read_text()
    assert f'"version": {BASELINE_VERSION}' in document
    comparison = compare_baseline([violation()], load_baseline(target))
    assert comparison.suppressed_count == 0
    assert len(comparison.new_violations) == 1


@pytest.mark.parametrize(
    "content",
    [
        "not json at all",
        '{"version": 999, "entries": []}',
        '{"version": 1, "entries": "nope"}',
        '{"version": 1, "entries": [{"path": "a.py"}]}',
        '{"version": 1, "entries": [42]}',
    ],
    ids=["not-json", "bad-version", "entries-not-list", "missing-keys", "entry-not-table"],
)
def test_malformed_baseline_raises(tmp_path: Path, content: str) -> None:
    target = tmp_path / "baseline.json"
    target.write_text(content)
    with pytest.raises(ConfigurationError):
        load_baseline(target)


def test_missing_baseline_file_raises(tmp_path: Path) -> None:
    with pytest.raises(ConfigurationError):
        load_baseline(tmp_path / "does-not-exist.json")
