"""Tests for the accelerator type registry."""

import pytest

from repro.cluster.accelerators import (
    DEFAULT_ACCELERATOR_TYPES,
    K80,
    P100,
    V100,
    AcceleratorRegistry,
    AcceleratorType,
    default_registry,
)
from repro.exceptions import ConfigurationError, UnknownAcceleratorError


class TestAcceleratorType:
    def test_default_types_have_expected_names(self):
        assert [t.name for t in DEFAULT_ACCELERATOR_TYPES] == ["v100", "p100", "k80"]

    def test_prices_ordered_by_generation(self):
        assert V100.cost_per_hour > P100.cost_per_hour > K80.cost_per_hour

    def test_rejects_empty_name(self):
        with pytest.raises(ConfigurationError):
            AcceleratorType(name="", cost_per_hour=1.0, memory_gb=16, peak_tflops=10)

    def test_rejects_negative_cost(self):
        with pytest.raises(ConfigurationError):
            AcceleratorType(name="x", cost_per_hour=-1.0, memory_gb=16, peak_tflops=10)

    def test_rejects_non_positive_memory(self):
        with pytest.raises(ConfigurationError):
            AcceleratorType(name="x", cost_per_hour=1.0, memory_gb=0, peak_tflops=10)

    def test_str_is_name(self):
        assert str(V100) == "v100"

    def test_is_hashable_and_frozen(self):
        assert len({V100, P100, K80, V100}) == 3


class TestAcceleratorRegistry:
    def test_default_registry_has_three_types(self):
        assert len(default_registry()) == 3

    def test_names_preserve_order(self):
        assert default_registry().names == ("v100", "p100", "k80")

    def test_get_by_name(self):
        assert default_registry().get("p100") is P100

    def test_get_unknown_raises(self):
        with pytest.raises(UnknownAcceleratorError):
            default_registry().get("tpu")

    def test_index_of_accepts_object_and_name(self):
        registry = default_registry()
        assert registry.index_of("k80") == 2
        assert registry.index_of(K80) == 2

    def test_index_of_unknown_raises(self):
        with pytest.raises(UnknownAcceleratorError):
            default_registry().index_of("a100")

    def test_contains_by_name_and_object(self):
        registry = default_registry()
        assert "v100" in registry
        assert V100 in registry
        assert "a100" not in registry
        assert 42 not in registry

    def test_costs_per_hour_in_order(self):
        assert default_registry().costs_per_hour() == [
            V100.cost_per_hour,
            P100.cost_per_hour,
            K80.cost_per_hour,
        ]

    def test_subset_preserves_requested_order(self):
        subset = default_registry().subset(["k80", "v100"])
        assert subset.names == ("k80", "v100")
        assert subset.index_of("v100") == 1

    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigurationError):
            AcceleratorRegistry([V100, V100])

    def test_empty_registry_rejected(self):
        with pytest.raises(ConfigurationError):
            AcceleratorRegistry([])

    def test_equality_and_hash(self):
        assert default_registry() == AcceleratorRegistry(DEFAULT_ACCELERATOR_TYPES)
        assert hash(default_registry()) == hash(AcceleratorRegistry(DEFAULT_ACCELERATOR_TYPES))

    def test_iteration_yields_types(self):
        assert list(default_registry()) == list(DEFAULT_ACCELERATOR_TYPES)
