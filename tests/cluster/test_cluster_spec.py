"""Tests for cluster specifications."""

import numpy as np
import pytest

from repro.cluster import ClusterSpec, default_registry
from repro.exceptions import ConfigurationError, UnknownAcceleratorError


class TestConstruction:
    def test_from_counts_fills_missing_types_with_zero(self):
        spec = ClusterSpec.from_counts({"v100": 4})
        assert spec.count("v100") == 4
        assert spec.count("p100") == 0
        assert spec.count("k80") == 0

    def test_paper_physical_cluster(self):
        spec = ClusterSpec.physical_paper_cluster()
        assert spec.total_workers() == 48
        assert (spec.count("v100"), spec.count("p100"), spec.count("k80")) == (8, 16, 24)

    def test_paper_simulated_cluster(self):
        spec = ClusterSpec.simulated_paper_cluster()
        assert spec.total_workers() == 108
        assert spec.counts_vector().tolist() == [36.0, 36.0, 36.0]

    def test_small_cluster(self):
        assert ClusterSpec.small_cluster(3).total_workers() == 9

    def test_unknown_accelerator_rejected(self):
        registry = default_registry()
        with pytest.raises(UnknownAcceleratorError):
            ClusterSpec(registry=registry, counts={"tpu": 4})

    def test_negative_count_rejected(self):
        with pytest.raises(ConfigurationError):
            ClusterSpec.from_counts({"v100": -1})

    def test_empty_cluster_rejected(self):
        with pytest.raises(ConfigurationError):
            ClusterSpec.from_counts({"v100": 0, "p100": 0, "k80": 0})


class TestQueries:
    def test_counts_vector_in_registry_order(self):
        spec = ClusterSpec.from_counts({"v100": 1, "p100": 2, "k80": 3})
        np.testing.assert_allclose(spec.counts_vector(), [1.0, 2.0, 3.0])

    def test_count_accepts_type_object(self):
        registry = default_registry()
        spec = ClusterSpec.from_counts({"v100": 5}, registry=registry)
        assert spec.count(registry.get("v100")) == 5

    def test_count_unknown_type_raises(self):
        spec = ClusterSpec.from_counts({"v100": 1})
        with pytest.raises(UnknownAcceleratorError):
            spec.count("a100")

    def test_cost_per_hour_sums_device_prices(self):
        registry = default_registry()
        spec = ClusterSpec.from_counts({"v100": 2, "k80": 4}, registry=registry)
        expected = 2 * registry.get("v100").cost_per_hour + 4 * registry.get("k80").cost_per_hour
        assert spec.cost_per_hour() == pytest.approx(expected)

    def test_scaled_multiplies_all_counts(self):
        spec = ClusterSpec.from_counts({"v100": 1, "p100": 2, "k80": 3}).scaled(3)
        assert spec.counts_vector().tolist() == [3.0, 6.0, 9.0]

    def test_scaled_rejects_non_positive_factor(self):
        with pytest.raises(ConfigurationError):
            ClusterSpec.from_counts({"v100": 1}).scaled(0)

    def test_with_counts_overrides_selected_types(self):
        spec = ClusterSpec.from_counts({"v100": 1, "p100": 2, "k80": 3}).with_counts(k80=10)
        assert spec.count("k80") == 10
        assert spec.count("v100") == 1

    def test_str_mentions_all_types(self):
        text = str(ClusterSpec.from_counts({"v100": 1, "p100": 2, "k80": 3}))
        assert "v100=1" in text and "k80=3" in text
