"""Tests for placing scheduled job combinations on concrete workers."""

import pytest

from repro.cluster import ClusterSpec, ClusterTopology, Placement, Placer, PlacementRequest
from repro.exceptions import SchedulingError


@pytest.fixture
def placer():
    spec = ClusterSpec.from_counts({"v100": 8, "p100": 4, "k80": 4})
    return Placer(ClusterTopology(spec, workers_per_server=4))


class TestPlacement:
    def test_single_worker_job_is_consolidated(self, placer):
        [placement] = placer.place(
            [PlacementRequest(combination=(0,), accelerator_name="v100", scale_factor=1)]
        )
        assert isinstance(placement, Placement)
        assert placement.consolidated is True
        assert len(placement.worker_ids) == 1

    def test_distributed_job_fits_one_server_when_possible(self, placer):
        [placement] = placer.place(
            [PlacementRequest(combination=(0,), accelerator_name="v100", scale_factor=4)]
        )
        assert placement.consolidated is True
        assert len(set(placement.worker_ids)) == 4

    def test_distributed_job_spanning_servers_is_unconsolidated(self, placer):
        [placement] = placer.place(
            [PlacementRequest(combination=(0,), accelerator_name="v100", scale_factor=8)]
        )
        assert placement.consolidated is False
        assert len(placement.worker_ids) == 8

    def test_requests_do_not_share_workers(self, placer):
        placements = placer.place(
            [
                PlacementRequest(combination=(0,), accelerator_name="v100", scale_factor=4),
                PlacementRequest(combination=(1,), accelerator_name="v100", scale_factor=4),
                PlacementRequest(combination=(2,), accelerator_name="p100", scale_factor=2),
            ]
        )
        used = [w for p in placements for w in p.worker_ids]
        assert len(used) == len(set(used)) == 10

    def test_demand_exceeding_capacity_raises(self, placer):
        requests = [
            PlacementRequest(combination=(i,), accelerator_name="k80", scale_factor=2)
            for i in range(3)
        ]
        with pytest.raises(SchedulingError):
            placer.place(requests)

    def test_larger_jobs_placed_first(self, placer):
        placements = placer.place(
            [
                PlacementRequest(combination=(0,), accelerator_name="v100", scale_factor=1),
                PlacementRequest(combination=(1,), accelerator_name="v100", scale_factor=4),
            ]
        )
        by_combination = {p.combination: p for p in placements}
        # The 4-worker job got a full server, so it is consolidated even
        # though a single-worker request was also present.
        assert by_combination[(1,)].consolidated is True

    def test_pair_combination_placement(self, placer):
        [placement] = placer.place(
            [PlacementRequest(combination=(3, 7), accelerator_name="k80", scale_factor=1)]
        )
        assert placement.combination == (3, 7)
        assert len(placement.worker_ids) == 1

    def test_accelerator_type_respected(self, placer):
        [placement] = placer.place(
            [PlacementRequest(combination=(0,), accelerator_name="p100", scale_factor=2)]
        )
        topology_types = {placement.accelerator_name}
        assert topology_types == {"p100"}
