"""Tests for the cluster topology (servers and workers)."""

import pytest

from repro.cluster import ClusterSpec, ClusterTopology
from repro.exceptions import ConfigurationError


@pytest.fixture
def topology():
    spec = ClusterSpec.from_counts({"v100": 8, "p100": 6, "k80": 3})
    return ClusterTopology(spec, workers_per_server=4)


class TestTopologyConstruction:
    def test_total_worker_count_matches_spec(self, topology):
        assert topology.num_workers() == 17

    def test_workers_grouped_by_type(self, topology):
        assert len(topology.workers_of_type("v100")) == 8
        assert len(topology.workers_of_type("p100")) == 6
        assert len(topology.workers_of_type("k80")) == 3

    def test_server_sizes_respect_workers_per_server(self, topology):
        for server in topology.servers:
            assert 1 <= server.num_workers <= 4

    def test_last_server_of_type_may_be_partial(self, topology):
        p100_servers = topology.servers_of_type("p100")
        sizes = sorted(server.num_workers for server in p100_servers)
        assert sizes == [2, 4]

    def test_worker_ids_are_dense_and_unique(self, topology):
        ids = [worker.worker_id for worker in topology.workers]
        assert ids == list(range(len(ids)))

    def test_worker_lookup_by_id(self, topology):
        worker = topology.worker(0)
        assert worker.worker_id == 0
        assert worker.accelerator_type.name == "v100"

    def test_worker_lookup_out_of_range(self, topology):
        with pytest.raises(ConfigurationError):
            topology.worker(999)

    def test_invalid_workers_per_server(self):
        spec = ClusterSpec.from_counts({"v100": 2})
        with pytest.raises(ConfigurationError):
            ClusterTopology(spec, workers_per_server=0)

    def test_unknown_type_queries_raise(self, topology):
        with pytest.raises(ConfigurationError):
            topology.workers_of_type("tpu")

    def test_every_worker_belongs_to_its_server(self, topology):
        for server in topology.servers:
            for worker_id in server.worker_ids:
                worker = topology.worker(worker_id)
                assert worker.server_id == server.server_id
                assert worker.accelerator_type == server.accelerator_type
