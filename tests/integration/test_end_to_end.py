"""End-to-end integration tests reproducing the paper's headline claims in miniature.

These tests run the full stack (trace generator → policy LPs → round-based
mechanism → simulator metrics) on scaled-down clusters and check that the
paper's qualitative results hold: heterogeneity-aware policies beat their
agnostic counterparts, principled space sharing beats Gandiva's ad-hoc
packing, the makespan policy beats FIFO, and the cost policies trade dollars
for SLO compliance.
"""

import pytest

from repro.cluster import ClusterSpec
from repro.core import EntitySpec, HierarchicalPolicy, make_policy
from repro.estimator import ThroughputEstimator
from repro.harness import run_policy_on_trace, steady_state_job_ids
from repro.simulator import Simulator, SimulatorConfig
from repro.workloads import ColocationModel, ThroughputOracle, TraceGenerator, TraceGeneratorConfig


@pytest.fixture(scope="module")
def oracle():
    return ThroughputOracle()


@pytest.fixture(scope="module")
def cluster():
    return ClusterSpec.from_counts({"v100": 2, "p100": 2, "k80": 2})


@pytest.fixture(scope="module")
def continuous_trace(oracle):
    return TraceGenerator(oracle).generate_continuous(num_jobs=24, jobs_per_hour=5.0, seed=11)


@pytest.fixture(scope="module")
def static_trace(oracle):
    return TraceGenerator(oracle).generate_static(num_jobs=16, seed=3)


class TestHeterogeneityAwareness:
    def test_gavel_las_beats_agnostic_las(self, oracle, cluster, continuous_trace):
        """Figures 8/9: the heterogeneity-aware LAS policy reduces average JCT."""
        window = steady_state_job_ids(continuous_trace)
        aware = run_policy_on_trace("max_min_fairness", continuous_trace, cluster, oracle=oracle)
        agnostic = run_policy_on_trace(
            "max_min_fairness_agnostic", continuous_trace, cluster, oracle=oracle
        )
        assert aware.average_jct_hours(window) < agnostic.average_jct_hours(window)

    def test_gavel_fifo_beats_agnostic_fifo(self, oracle, cluster, continuous_trace):
        """Figures 16/18."""
        window = steady_state_job_ids(continuous_trace)
        aware = run_policy_on_trace("fifo", continuous_trace, cluster, oracle=oracle)
        agnostic = run_policy_on_trace("fifo_agnostic", continuous_trace, cluster, oracle=oracle)
        assert aware.average_jct_hours(window) <= agnostic.average_jct_hours(window) * 1.05

    def test_gavel_ftf_beats_agnostic_ftf(self, oracle, cluster, continuous_trace):
        """Figure 10: both average JCT and the FTF metric improve."""
        window = steady_state_job_ids(continuous_trace)
        aware = run_policy_on_trace("finish_time_fairness", continuous_trace, cluster, oracle=oracle)
        agnostic = run_policy_on_trace(
            "finish_time_fairness_agnostic", continuous_trace, cluster, oracle=oracle
        )
        assert aware.average_jct_hours(window) <= agnostic.average_jct_hours(window) * 1.05


class TestSpaceSharing:
    def test_gavel_ss_beats_gandiva_packing(self, oracle, cluster, continuous_trace):
        """§7.3: principled packing beats Gandiva's random exploration."""
        window = steady_state_job_ids(continuous_trace)
        gavel_ss = run_policy_on_trace("max_min_fairness_ss", continuous_trace, cluster, oracle=oracle)
        gandiva = run_policy_on_trace("gandiva", continuous_trace, cluster, oracle=oracle)
        assert gavel_ss.average_jct_hours(window) < gandiva.average_jct_hours(window)


class TestMakespan:
    def test_makespan_policy_beats_fifo(self, oracle, cluster, static_trace):
        """Figure 19: the heterogeneity-aware makespan policy beats FIFO."""
        makespan = run_policy_on_trace("makespan", static_trace, cluster, oracle=oracle)
        fifo = run_policy_on_trace("fifo_agnostic", static_trace, cluster, oracle=oracle)
        assert makespan.makespan_hours() < fifo.makespan_hours()

    def test_makespan_close_to_gandiva_or_better(self, oracle, cluster, static_trace):
        makespan = run_policy_on_trace("makespan", static_trace, cluster, oracle=oracle)
        gandiva = run_policy_on_trace("gandiva", static_trace, cluster, oracle=oracle)
        assert makespan.makespan_hours() <= gandiva.makespan_hours() * 1.05


class TestCostPolicies:
    def test_min_cost_cheaper_but_violates_slos(self, oracle, cluster):
        """§7.3 Cost: min-cost saves money, min-cost-with-SLOs removes violations."""
        generator = TraceGenerator(oracle)
        trace = generator.generate_continuous(num_jobs=16, jobs_per_hour=4.0, seed=5)
        trace = generator.assign_slos(trace, slo_multipliers=(1.2, 2.0, 10.0), seed=5)

        throughput = run_policy_on_trace("max_total_throughput", trace, cluster, oracle=oracle)
        min_cost = run_policy_on_trace("min_cost", trace, cluster, oracle=oracle)
        with_slos = run_policy_on_trace("min_cost_slo", trace, cluster, oracle=oracle)

        assert min_cost.total_cost_dollars < throughput.total_cost_dollars
        assert with_slos.slo_violation_rate() <= min_cost.slo_violation_rate()


class TestHierarchicalEndToEnd:
    def test_entities_with_higher_weight_finish_sooner(self, oracle, cluster):
        generator = TraceGenerator(oracle)
        trace = TraceGenerator.assign_entities(generator.generate_static(num_jobs=12, seed=9), 3)
        policy = HierarchicalPolicy(
            [EntitySpec(0, weight=1.0), EntitySpec(1, weight=1.0), EntitySpec(2, weight=4.0)]
        )
        result = run_policy_on_trace(policy, trace, cluster, oracle=oracle)
        assert result.completion_rate() == 1.0


class TestEstimatorEndToEnd:
    def test_estimated_throughputs_close_to_oracle_jct(self, oracle, cluster):
        """Figure 14: estimated colocation throughputs cost little average JCT."""
        trace = TraceGenerator(oracle).generate_continuous(num_jobs=14, jobs_per_hour=5.0, seed=21)
        window = steady_state_job_ids(trace)
        oracle_result = run_policy_on_trace("max_min_fairness_ss", trace, cluster, oracle=oracle)
        estimator = ThroughputEstimator(ColocationModel(oracle), profile_fraction=0.3, seed=1)
        estimated_result = run_policy_on_trace(
            "max_min_fairness_ss",
            trace,
            cluster,
            oracle=oracle,
            config=SimulatorConfig(estimator=estimator),
        )
        assert estimated_result.average_jct_hours(window) <= oracle_result.average_jct_hours(window) * 1.35
