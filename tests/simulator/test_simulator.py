"""Tests for the round-based cluster simulator."""

import pytest

from repro.cluster import ClusterSpec
from repro.core import make_policy
from repro.exceptions import ConfigurationError
from repro.simulator import Simulator, SimulatorConfig
from repro.workloads import Job, ThroughputOracle, Trace, TraceGenerator


@pytest.fixture(scope="module")
def oracle():
    return ThroughputOracle()


@pytest.fixture(scope="module")
def small_spec():
    return ClusterSpec.from_counts({"v100": 2, "p100": 2, "k80": 2})


def _simple_trace(oracle, num_jobs=4, steps=100_000.0, job_type="resnet18-bs64"):
    jobs = [
        Job(job_id=i, job_type=job_type, total_steps=steps, arrival_time=0.0)
        for i in range(num_jobs)
    ]
    return Trace.from_jobs(jobs, name="simple")


class TestConfig:
    def test_invalid_round_duration(self):
        with pytest.raises(ConfigurationError):
            SimulatorConfig(round_duration_seconds=0.0)

    def test_invalid_mode(self):
        with pytest.raises(ConfigurationError):
            SimulatorConfig(mode="warp")

    def test_invalid_overhead(self):
        with pytest.raises(ConfigurationError):
            SimulatorConfig(checkpoint_overhead_seconds=-1.0)


class TestBasicExecution:
    def test_all_jobs_complete(self, oracle, small_spec):
        simulator = Simulator(make_policy("max_min_fairness"), small_spec, oracle=oracle)
        result = simulator.run(_simple_trace(oracle))
        assert result.completion_rate() == 1.0
        assert result.num_rounds > 0
        assert result.end_time > 0

    def test_empty_trace_rejected(self, oracle, small_spec):
        simulator = Simulator(make_policy("max_min_fairness"), small_spec, oracle=oracle)
        with pytest.raises(ConfigurationError):
            simulator.run(Trace.from_jobs([]))

    def test_progress_matches_step_counts(self, oracle, small_spec):
        trace = _simple_trace(oracle, num_jobs=2)
        simulator = Simulator(make_policy("max_min_fairness"), small_spec, oracle=oracle)
        result = simulator.run(trace)
        for job_id, record in result.records.items():
            assert record.steps_done >= trace.job(job_id).total_steps * 0.999

    def test_jct_not_shorter_than_ideal(self, oracle, small_spec):
        """No job can finish faster than running alone on its fastest GPU."""
        trace = _simple_trace(oracle, num_jobs=3)
        simulator = Simulator(make_policy("max_min_fairness"), small_spec, oracle=oracle)
        result = simulator.run(trace)
        for job_id, record in result.records.items():
            job = trace.job(job_id)
            fastest = max(
                oracle.throughput(job.job_type, name, scale_factor=job.scale_factor)
                for name in oracle.registry.names
            )
            assert record.jct_seconds >= job.total_steps / fastest * 0.99

    def test_cost_accounting_positive(self, oracle, small_spec):
        simulator = Simulator(make_policy("max_min_fairness"), small_spec, oracle=oracle)
        result = simulator.run(_simple_trace(oracle))
        assert result.total_cost_dollars > 0
        assert sum(record.cost_dollars for record in result.records.values()) == pytest.approx(
            result.total_cost_dollars
        )

    def test_utilization_bounded(self, oracle, small_spec):
        simulator = Simulator(make_policy("max_min_fairness"), small_spec, oracle=oracle)
        result = simulator.run(_simple_trace(oracle))
        assert 0.0 < result.utilization() <= 1.0

    def test_policy_recomputed_on_events(self, oracle, small_spec):
        jobs = [
            Job(job_id=i, job_type="resnet18-bs64", total_steps=50_000.0 * (i + 1), arrival_time=0.0)
            for i in range(4)
        ]
        trace = Trace.from_jobs(jobs)
        simulator = Simulator(make_policy("max_min_fairness"), small_spec, oracle=oracle)
        result = simulator.run(trace)
        # One computation at the start plus at least one after a completion
        # event (the jobs have staggered lengths, so completions are spread out).
        assert result.num_policy_recomputations >= 2

    def test_deterministic_given_seed(self, oracle, small_spec):
        trace = TraceGenerator(oracle).generate_continuous(num_jobs=8, jobs_per_hour=4, seed=5)
        results = [
            Simulator(
                make_policy("max_min_fairness"),
                small_spec,
                oracle=oracle,
                config=SimulatorConfig(seed=1),
            ).run(trace)
            for _ in range(2)
        ]
        assert results[0].average_jct_hours() == pytest.approx(results[1].average_jct_hours())


class TestArrivals:
    def test_jobs_not_started_before_arrival(self, oracle, small_spec):
        jobs = [
            Job(job_id=0, job_type="resnet18-bs64", total_steps=50_000.0, arrival_time=0.0),
            Job(job_id=1, job_type="resnet18-bs64", total_steps=50_000.0, arrival_time=36_000.0),
        ]
        trace = Trace.from_jobs(jobs)
        simulator = Simulator(make_policy("max_min_fairness"), small_spec, oracle=oracle)
        result = simulator.run(trace)
        assert result.records[1].completion_time > 36_000.0

    def test_idle_period_skipped(self, oracle, small_spec):
        """A long gap between arrivals should not inflate the round count much."""
        jobs = [
            Job(job_id=0, job_type="resnet18-bs64", total_steps=10_000.0, arrival_time=0.0),
            Job(job_id=1, job_type="resnet18-bs64", total_steps=10_000.0, arrival_time=1e6),
        ]
        trace = Trace.from_jobs(jobs)
        simulator = Simulator(make_policy("max_min_fairness"), small_spec, oracle=oracle)
        result = simulator.run(trace)
        assert result.completion_rate() == 1.0
        # Far fewer rounds than the 1e6 / 360 that ticking through the gap would take.
        assert result.num_rounds < 1000


class TestMultiWorkerJobs:
    def test_distributed_jobs_complete(self, oracle):
        spec = ClusterSpec.from_counts({"v100": 4, "p100": 4, "k80": 4})
        jobs = [
            Job(job_id=0, job_type="resnet50-bs64", total_steps=200_000.0, scale_factor=4),
            Job(job_id=1, job_type="lstm-bs20", total_steps=100_000.0, scale_factor=2),
            Job(job_id=2, job_type="a3c-bs4", total_steps=50_000.0),
        ]
        trace = Trace.from_jobs(jobs)
        simulator = Simulator(make_policy("max_min_fairness"), spec, oracle=oracle)
        result = simulator.run(trace)
        assert result.completion_rate() == 1.0


class TestSpaceSharingExecution:
    def test_space_sharing_policy_completes_and_is_not_worse(self, oracle, small_spec):
        trace = TraceGenerator(oracle).generate_continuous(num_jobs=10, jobs_per_hour=6, seed=2)
        plain = Simulator(make_policy("max_min_fairness"), small_spec, oracle=oracle).run(trace)
        shared = Simulator(make_policy("max_min_fairness_ss"), small_spec, oracle=oracle).run(trace)
        assert shared.completion_rate() == 1.0
        # Space sharing should not catastrophically hurt average JCT.
        assert shared.average_jct_hours() <= plain.average_jct_hours() * 1.3
