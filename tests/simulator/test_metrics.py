"""Tests for simulation metrics."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.simulator import JobRecord, SimulationResult, cdf_points
from repro.workloads import Job


def _record(job_id, arrival=0.0, completion=None, slo=None, reference_duration=None):
    job = Job(
        job_id=job_id,
        job_type="a3c-bs4",
        total_steps=100.0,
        arrival_time=arrival,
        slo_seconds=slo,
        duration_seconds_on_reference=reference_duration,
    )
    return JobRecord(job=job, completion_time=completion)


def _result(records, end_time=1000.0):
    return SimulationResult(
        policy_name="test",
        records={record.job.job_id: record for record in records},
        end_time=end_time,
        num_rounds=10,
        busy_worker_seconds={"v100": 500.0, "k80": 100.0},
        capacity_worker_seconds={"v100": 1000.0, "k80": 1000.0},
        total_cost_dollars=42.0,
        isolated_durations={0: 100.0, 1: 200.0},
    )


class TestJobRecord:
    def test_jct_computed_from_arrival(self):
        record = _record(0, arrival=100.0, completion=4600.0)
        assert record.jct_seconds == pytest.approx(4500.0)
        assert record.completed

    def test_incomplete_job_has_no_jct(self):
        record = _record(0)
        assert record.jct_seconds is None
        assert not record.completed

    def test_slo_violation_detection(self):
        met = _record(0, completion=50.0, slo=100.0)
        missed = _record(1, completion=500.0, slo=100.0)
        no_slo = _record(2, completion=500.0)
        assert met.slo_violated is False
        assert missed.slo_violated is True
        assert no_slo.slo_violated is None

    def test_unfinished_job_with_slo_counts_as_violation(self):
        assert _record(0, slo=100.0).slo_violated is True

    def test_finish_time_fairness(self):
        record = _record(0, completion=200.0)
        assert record.finish_time_fairness(100.0) == pytest.approx(2.0)
        assert record.finish_time_fairness(0.0) is None


class TestSimulationResult:
    def test_average_jct_hours(self):
        result = _result([_record(0, completion=3600.0), _record(1, completion=7200.0)])
        assert result.average_jct_hours() == pytest.approx(1.5)

    def test_average_jct_with_subset(self):
        result = _result([_record(0, completion=3600.0), _record(1, completion=7200.0)])
        assert result.average_jct_hours([1]) == pytest.approx(2.0)

    def test_average_jct_no_completions_raises(self):
        result = _result([_record(0)])
        with pytest.raises(ConfigurationError):
            result.average_jct_hours()

    def test_makespan(self):
        result = _result([_record(0, completion=3600.0), _record(1, completion=7200.0)])
        assert result.makespan_hours() == pytest.approx(2.0)

    def test_completion_rate(self):
        result = _result([_record(0, completion=10.0), _record(1)])
        assert result.completion_rate() == pytest.approx(0.5)

    def test_finish_time_fairness_values(self):
        result = _result([_record(0, completion=200.0), _record(1, completion=100.0)])
        values = result.finish_time_fairness_values()
        assert values == [pytest.approx(2.0), pytest.approx(0.5)]
        assert result.average_finish_time_fairness() == pytest.approx(1.25)

    def test_slo_violation_rate(self):
        result = _result(
            [
                _record(0, completion=50.0, slo=100.0),
                _record(1, completion=500.0, slo=100.0),
                _record(2, completion=10.0),
            ]
        )
        assert result.slo_violation_rate() == pytest.approx(0.5)

    def test_utilization(self):
        result = _result([_record(0, completion=1.0)])
        assert result.utilization() == pytest.approx(600.0 / 2000.0)
        by_type = result.utilization_by_type()
        assert by_type["v100"] == pytest.approx(0.5)
        assert by_type["k80"] == pytest.approx(0.1)

    def test_split_short_long_by_reference_duration(self):
        result = _result(
            [
                _record(0, completion=100.0, reference_duration=3600.0),
                _record(1, completion=100.0, reference_duration=3600.0 * 100),
            ]
        )
        short, long = result.split_short_long(threshold_hours=10.0)
        assert short == [0]
        assert long == [1]


class TestCdfPoints:
    def test_empty(self):
        xs, ys = cdf_points([])
        assert len(xs) == 0 and len(ys) == 0

    def test_sorted_and_normalized(self):
        xs, ys = cdf_points([3.0, 1.0, 2.0])
        np.testing.assert_allclose(xs, [1.0, 2.0, 3.0])
        np.testing.assert_allclose(ys, [1 / 3, 2 / 3, 1.0])
