"""Tests for the ideal, continuous and physical simulator modes."""

import pytest

from repro.cluster import ClusterSpec
from repro.core import make_policy
from repro.simulator import Simulator, SimulatorConfig
from repro.workloads import ThroughputOracle, TraceGenerator


@pytest.fixture(scope="module")
def oracle():
    return ThroughputOracle()


@pytest.fixture(scope="module")
def spec():
    return ClusterSpec.from_counts({"v100": 2, "p100": 2, "k80": 2})


@pytest.fixture(scope="module")
def trace(oracle):
    return TraceGenerator(oracle).generate_continuous(num_jobs=10, jobs_per_hour=5, seed=7)


class TestIdealMode:
    def test_ideal_mode_completes(self, oracle, spec, trace):
        simulator = Simulator(
            make_policy("max_min_fairness"), spec, oracle=oracle, config=SimulatorConfig(mode="ideal")
        )
        result = simulator.run(trace)
        assert result.completion_rate() == 1.0
        assert "(ideal)" in result.policy_name

    def test_round_mechanism_close_to_ideal(self, oracle, spec, trace):
        """Figure 13b: the round-based mechanism behaves almost like the ideal fluid execution."""
        ideal = Simulator(
            make_policy("max_min_fairness"), spec, oracle=oracle, config=SimulatorConfig(mode="ideal")
        ).run(trace)
        rounds = Simulator(
            make_policy("max_min_fairness"),
            spec,
            oracle=oracle,
            config=SimulatorConfig(mode="round", round_duration_seconds=360.0),
        ).run(trace)
        assert rounds.average_jct_hours() == pytest.approx(ideal.average_jct_hours(), rel=0.30)
        assert rounds.average_jct_hours() >= ideal.average_jct_hours() * 0.8

    def test_shorter_rounds_track_ideal_more_closely(self, oracle, spec, trace):
        """Figure 13a: smaller round durations approximate the target allocation better."""
        ideal = Simulator(
            make_policy("max_min_fairness"), spec, oracle=oracle, config=SimulatorConfig(mode="ideal")
        ).run(trace).average_jct_hours()
        short_round = Simulator(
            make_policy("max_min_fairness"), spec, oracle=oracle,
            config=SimulatorConfig(round_duration_seconds=360.0),
        ).run(trace).average_jct_hours()
        long_round = Simulator(
            make_policy("max_min_fairness"), spec, oracle=oracle,
            config=SimulatorConfig(round_duration_seconds=5760.0),
        ).run(trace).average_jct_hours()
        assert abs(short_round - ideal) <= abs(long_round - ideal) + 1e-6


class TestContinuousMode:
    def test_continuous_mode_completes(self, oracle, spec, trace):
        result = Simulator(
            make_policy("max_min_fairness"),
            spec,
            oracle=oracle,
            config=SimulatorConfig(mode="continuous"),
        ).run(trace)
        assert result.completion_rate() == 1.0
        assert "(continuous)" in result.policy_name
        # Continuous mode incorporates churn at the event instant: zero lag.
        assert result.mean_allocation_staleness_seconds() == 0.0

    def test_continuous_matches_ideal_without_control_events(self, oracle, spec, trace):
        """With no queued control events, continuous IS the ideal event loop."""
        ideal = Simulator(
            make_policy("max_min_fairness"), spec, oracle=oracle,
            config=SimulatorConfig(mode="ideal"),
        ).run(trace)
        continuous = Simulator(
            make_policy("max_min_fairness"), spec, oracle=oracle,
            config=SimulatorConfig(mode="continuous"),
        ).run(trace)
        assert continuous.end_time == ideal.end_time
        assert continuous.num_rounds == ideal.num_rounds
        for job_id, record in ideal.records.items():
            assert continuous.records[job_id].completion_time == record.completion_time
            assert continuous.records[job_id].steps_done == record.steps_done

    def test_resolve_ticks_add_solves(self, oracle, spec, trace):
        plain = Simulator(
            make_policy("max_min_fairness"), spec, oracle=oracle,
            config=SimulatorConfig(mode="continuous"),
        ).run(trace)
        ticked = Simulator(
            make_policy("max_min_fairness"), spec, oracle=oracle,
            config=SimulatorConfig(mode="continuous", resolve_interval_seconds=1800.0),
        ).run(trace)
        assert ticked.completion_rate() == 1.0
        assert ticked.num_rounds > plain.num_rounds


class TestPhysicalMode:
    def test_physical_mode_completes_with_overhead(self, oracle, spec, trace):
        result = Simulator(
            make_policy("max_min_fairness"),
            spec,
            oracle=oracle,
            config=SimulatorConfig(mode="physical", checkpoint_overhead_seconds=5.0, seed=1),
        ).run(trace)
        assert result.completion_rate() == 1.0
        assert any(record.preemptions > 0 for record in result.records.values())

    def test_physical_close_to_simulation(self, oracle, spec, trace):
        """Table 3: physical-cluster results agree with simulation within a few percent."""
        simulated = Simulator(
            make_policy("max_min_fairness"), spec, oracle=oracle, config=SimulatorConfig(seed=1)
        ).run(trace)
        physical = Simulator(
            make_policy("max_min_fairness"),
            spec,
            oracle=oracle,
            config=SimulatorConfig(mode="physical", seed=1),
        ).run(trace)
        assert physical.average_jct_hours() == pytest.approx(
            simulated.average_jct_hours(), rel=0.10
        )

    def test_physical_mode_never_faster_than_pure_simulation_by_much(self, oracle, spec, trace):
        simulated = Simulator(
            make_policy("max_min_fairness"), spec, oracle=oracle, config=SimulatorConfig(seed=1)
        ).run(trace)
        physical = Simulator(
            make_policy("max_min_fairness"),
            spec,
            oracle=oracle,
            config=SimulatorConfig(mode="physical", seed=1, checkpoint_overhead_seconds=30.0),
        ).run(trace)
        assert physical.average_jct_hours() >= simulated.average_jct_hours() * 0.95
