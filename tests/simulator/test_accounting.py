"""Regression tests for partial-round and checkpoint-overhead accounting.

Jobs that complete mid-round release their accelerators at the completion
instant: utilization, per-accelerator seconds and dollar cost must be
prorated to the actually-used time, not charged a full round.  Checkpoint
overhead in physical mode is billed (the device is held) but accounted
separately from productive time.
"""

import pytest

from repro.cluster import ClusterSpec
from repro.core import make_policy
from repro.simulator import Simulator, SimulatorConfig
from repro.workloads import Job, ThroughputOracle, Trace

_SECONDS_PER_HOUR = 3600.0


@pytest.fixture(scope="module")
def oracle():
    return ThroughputOracle()


@pytest.fixture(scope="module")
def spec():
    return ClusterSpec.from_counts({"v100": 2, "p100": 2, "k80": 2})


def _single_job_trace(oracle, steps, job_type="resnet18-bs64"):
    return Trace.from_jobs(
        [Job(job_id=0, job_type=job_type, total_steps=steps, arrival_time=0.0)]
    )


def _run(oracle, spec, trace, **config_kwargs):
    simulator = Simulator(
        make_policy("max_min_fairness"),
        spec,
        oracle=oracle,
        config=SimulatorConfig(**config_kwargs),
    )
    return simulator.run(trace)


class TestPartialRoundProration:
    def test_mid_round_completion_prorates_busy_and_cost(self, oracle, spec):
        """A 1-job trace finishing mid-round reports prorated busy/cost."""
        round_duration = 360.0
        fastest = max(
            oracle.throughput("resnet18-bs64", name) for name in oracle.registry.names
        )
        # Enough steps for roughly half a round on the fastest accelerator, so
        # the job finishes inside the first round no matter where it lands.
        steps = fastest * round_duration * 0.4
        result = _run(
            oracle,
            spec,
            _single_job_trace(oracle, steps),
            round_duration_seconds=round_duration,
        )
        record = result.records[0]
        assert record.completed
        assert record.jct_seconds < round_duration

        # Accelerator occupancy equals the time to completion, not the round.
        assert sum(record.accelerator_seconds.values()) == pytest.approx(
            record.jct_seconds, rel=1e-9
        )
        assert sum(result.busy_worker_seconds.values()) == pytest.approx(
            record.jct_seconds, rel=1e-9
        )

        # Cost covers exactly the used time on the accelerator that ran the job.
        (accelerator_name,) = record.accelerator_seconds.keys()
        rate = spec.registry.get(accelerator_name).cost_per_hour
        expected_cost = rate * record.jct_seconds / _SECONDS_PER_HOUR
        assert record.cost_dollars == pytest.approx(expected_cost, rel=1e-9)
        assert result.total_cost_dollars == pytest.approx(expected_cost, rel=1e-9)

    def test_single_job_busy_time_matches_jct_across_rounds(self, oracle, spec):
        """With one job the total occupancy equals its JCT even over many rounds."""
        fastest = max(
            oracle.throughput("resnet18-bs64", name) for name in oracle.registry.names
        )
        steps = fastest * 360.0 * 3.5
        result = _run(oracle, spec, _single_job_trace(oracle, steps))
        record = result.records[0]
        assert record.completed
        assert result.num_rounds >= 2
        assert sum(record.accelerator_seconds.values()) == pytest.approx(
            record.jct_seconds, rel=1e-6
        )

    def test_full_round_jobs_still_charged_whole_rounds(self, oracle, spec):
        """Jobs that do not complete keep being charged whole rounds."""
        result = _run(
            oracle,
            spec,
            _single_job_trace(oracle, steps=1e9),
            max_simulated_seconds=1000.0,
        )
        record = result.records[0]
        assert not record.completed
        assert sum(record.accelerator_seconds.values()) == pytest.approx(
            result.num_rounds * 360.0
        )

    def test_utilization_bounded_with_proration(self, oracle, spec):
        jobs = [
            Job(job_id=i, job_type="resnet18-bs64", total_steps=30_000.0 * (i + 1))
            for i in range(4)
        ]
        result = _run(oracle, spec, Trace.from_jobs(jobs))
        assert 0.0 < result.utilization() <= 1.0
        assert result.total_cost_dollars == pytest.approx(
            sum(record.cost_dollars for record in result.records.values())
        )


class TestCheckpointOverheadAccounting:
    def test_overhead_recorded_separately(self, oracle, spec):
        fastest = max(
            oracle.throughput("resnet18-bs64", name) for name in oracle.registry.names
        )
        steps = fastest * 360.0 * 2.5
        result = _run(
            oracle,
            spec,
            _single_job_trace(oracle, steps),
            mode="physical",
            checkpoint_overhead_seconds=30.0,
            throughput_jitter_std=0.0,
        )
        record = result.records[0]
        assert record.completed
        # One preemption (the initial placement); the job then stays put.
        assert record.preemptions >= 1
        assert record.checkpoint_seconds == pytest.approx(30.0 * record.preemptions)
        assert sum(result.checkpoint_worker_seconds.values()) == pytest.approx(
            record.checkpoint_seconds
        )
        # Overhead is billed as busy time but excluded from productive time.
        assert result.productive_utilization() < result.utilization()
        assert 0.0 < result.checkpoint_overhead_fraction() < 1.0

    def test_no_overhead_outside_physical_mode(self, oracle, spec):
        result = _run(oracle, spec, _single_job_trace(oracle, 50_000.0))
        assert all(record.checkpoint_seconds == 0.0 for record in result.records.values())
        assert sum(result.checkpoint_worker_seconds.values()) == 0.0
        assert result.productive_utilization() == pytest.approx(result.utilization())
