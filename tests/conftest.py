"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import ClusterSpec, default_registry
from repro.core import PolicyProblem, ThroughputMatrix, build_throughput_matrix
from repro.workloads import (
    ColocationModel,
    Job,
    ThroughputOracle,
    TraceGenerator,
    TraceGeneratorConfig,
)


@pytest.fixture(scope="session")
def registry():
    """The default V100/P100/K80 accelerator registry."""
    return default_registry()


@pytest.fixture(scope="session")
def oracle():
    """The synthetic throughput oracle over the Table 2 workload."""
    return ThroughputOracle()


@pytest.fixture(scope="session")
def colocation_model(oracle):
    return ColocationModel(oracle)


@pytest.fixture
def small_cluster(registry):
    """A small heterogeneous cluster: 2 V100, 2 P100, 2 K80."""
    return ClusterSpec.from_counts({"v100": 2, "p100": 2, "k80": 2}, registry=registry)


@pytest.fixture
def tiny_cluster_v100_k80(registry):
    """The Section 4.1 worked-example cluster: 1 V100 and 1 K80."""
    sub = registry.subset(["v100", "k80"])
    return ClusterSpec.from_counts({"v100": 1, "k80": 1}, registry=sub)


@pytest.fixture
def worked_example_matrix(registry):
    """The Section 4.1 throughput matrix T = [[4,1],[3,1],[2,1]] on (V100, K80)."""
    sub = registry.subset(["v100", "k80"])
    return ThroughputMatrix(
        sub,
        {
            (0,): np.array([[4.0, 1.0]]),
            (1,): np.array([[3.0, 1.0]]),
            (2,): np.array([[2.0, 1.0]]),
        },
    )


@pytest.fixture
def worked_example_problem(worked_example_matrix, tiny_cluster_v100_k80):
    jobs = {
        i: Job(job_id=i, job_type="resnet50-bs64", total_steps=10_000.0, arrival_time=float(i))
        for i in range(3)
    }
    return PolicyProblem(
        jobs=jobs,
        throughputs=worked_example_matrix,
        cluster_spec=tiny_cluster_v100_k80,
    )


def make_jobs(oracle, job_types, scale_factors=None, steps=50_000.0):
    """Helper: build Job objects for the given job types."""
    scale_factors = scale_factors or [1] * len(job_types)
    return [
        Job(
            job_id=i,
            job_type=job_type,
            total_steps=steps,
            arrival_time=float(i * 10),
            scale_factor=scale,
        )
        for i, (job_type, scale) in enumerate(zip(job_types, scale_factors))
    ]


@pytest.fixture
def mixed_jobs(oracle):
    """Six single-worker jobs spanning heavy and light models."""
    return make_jobs(
        oracle,
        [
            "resnet50-bs64",
            "a3c-bs4",
            "lstm-bs20",
            "transformer-bs64",
            "resnet18-bs128",
            "recoder-bs2048",
        ],
    )


@pytest.fixture
def mixed_problem(mixed_jobs, oracle, small_cluster):
    matrix = build_throughput_matrix(mixed_jobs, oracle)
    return PolicyProblem(
        jobs={job.job_id: job for job in mixed_jobs},
        throughputs=matrix,
        cluster_spec=small_cluster,
    )


@pytest.fixture
def mixed_problem_ss(mixed_jobs, oracle, small_cluster, colocation_model):
    matrix = build_throughput_matrix(
        mixed_jobs, oracle, space_sharing=True, colocation_model=colocation_model
    )
    return PolicyProblem(
        jobs={job.job_id: job for job in mixed_jobs},
        throughputs=matrix,
        cluster_spec=small_cluster,
    )


@pytest.fixture(scope="session")
def trace_generator(oracle):
    return TraceGenerator(oracle)


@pytest.fixture(scope="session")
def multi_worker_trace_generator(oracle):
    return TraceGenerator(oracle, config=TraceGeneratorConfig(multi_worker=True))
