"""Tests for the round-based scheduling mechanism (Algorithm 1)."""

import numpy as np
import pytest

from repro.cluster import ClusterSpec, default_registry
from repro.core import Allocation
from repro.exceptions import SchedulingError
from repro.scheduler import PriorityTracker, RoundScheduler, ScheduledCombination


@pytest.fixture
def registry():
    return default_registry()


def _tracker(registry, entries):
    return PriorityTracker(Allocation(registry, entries))


class TestRoundScheduling:
    def test_single_job_per_worker_respected(self, registry):
        spec = ClusterSpec.from_counts({"v100": 1, "p100": 1, "k80": 1}, registry=registry)
        tracker = _tracker(
            registry,
            {
                (0,): np.array([0.5, 0.5, 0.0]),
                (1,): np.array([0.5, 0.5, 0.0]),
            },
        )
        scheduled = RoundScheduler(spec).schedule_round(tracker, {0: 1, 1: 1})
        # Each job can be scheduled at most once per round.
        jobs = [job for item in scheduled for job in item.combination]
        assert sorted(jobs) == sorted(set(jobs))
        RoundScheduler(spec).validate_round(scheduled)

    def test_all_workers_used_when_demand_exists(self, registry):
        spec = ClusterSpec.from_counts({"v100": 2, "p100": 2, "k80": 2}, registry=registry)
        entries = {(i,): np.full(3, 1 / 3) for i in range(6)}
        tracker = _tracker(registry, entries)
        scheduled = RoundScheduler(spec).schedule_round(tracker, {i: 1 for i in range(6)})
        assert len(scheduled) == 6

    def test_zero_allocation_jobs_not_scheduled(self, registry):
        spec = ClusterSpec.from_counts({"v100": 2, "p100": 2, "k80": 2}, registry=registry)
        tracker = _tracker(
            registry,
            {
                (0,): np.array([1.0, 0.0, 0.0]),
                (1,): np.array([0.0, 0.0, 0.0]),
            },
        )
        scheduled = RoundScheduler(spec).schedule_round(tracker, {0: 1, 1: 1})
        assert all(item.combination != (1,) for item in scheduled)

    def test_distributed_job_needs_enough_workers(self, registry):
        spec = ClusterSpec.from_counts({"v100": 2, "p100": 0, "k80": 0}, registry=registry)
        tracker = _tracker(registry, {(0,): np.array([1.0, 0.0, 0.0])})
        scheduled = RoundScheduler(spec).schedule_round(tracker, {0: 4})
        assert scheduled == []

    def test_underserved_job_scheduled_before_overserved(self, registry):
        spec = ClusterSpec.from_counts({"v100": 1, "p100": 0, "k80": 0}, registry=registry)
        tracker = _tracker(
            registry,
            {
                (0,): np.array([0.5, 0.0, 0.0]),
                (1,): np.array([0.5, 0.0, 0.0]),
            },
        )
        # Job 0 already ran for three rounds on the V100; job 1 never did.
        tracker.record_time((0,), "v100", 3 * 360.0)
        scheduled = RoundScheduler(spec).schedule_round(tracker, {0: 1, 1: 1})
        assert len(scheduled) == 1
        assert scheduled[0].combination == (1,)

    def test_pair_combination_conflicts_with_singletons(self, registry):
        """Once a pair is scheduled, neither of its jobs may run alone this round."""
        spec = ClusterSpec.from_counts({"v100": 3, "p100": 0, "k80": 0}, registry=registry)
        tracker = _tracker(
            registry,
            {
                (0,): np.array([0.1, 0.0, 0.0]),
                (1,): np.array([0.1, 0.0, 0.0]),
                (0, 1): np.array([0.8, 0.0, 0.0]),
            },
        )
        scheduled = RoundScheduler(spec).schedule_round(tracker, {0: 1, 1: 1})
        combinations = [item.combination for item in scheduled]
        assert (0, 1) in combinations
        assert (0,) not in combinations and (1,) not in combinations

    def test_deterministic_given_same_state(self, registry):
        spec = ClusterSpec.from_counts({"v100": 2, "p100": 1, "k80": 1}, registry=registry)
        entries = {(i,): np.array([0.3, 0.3, 0.3]) for i in range(5)}
        first = RoundScheduler(spec).schedule_round(_tracker(registry, entries), {i: 1 for i in range(5)})
        second = RoundScheduler(spec).schedule_round(_tracker(registry, entries), {i: 1 for i in range(5)})
        assert [(s.combination, s.accelerator_name) for s in first] == [
            (s.combination, s.accelerator_name) for s in second
        ]


class TestRoundValidation:
    def test_duplicate_job_detected(self, registry):
        spec = ClusterSpec.from_counts({"v100": 2}, registry=registry)
        scheduled = [
            ScheduledCombination(combination=(0,), accelerator_name="v100", scale_factor=1, priority=1.0),
            ScheduledCombination(combination=(0, 1), accelerator_name="v100", scale_factor=1, priority=1.0),
        ]
        with pytest.raises(SchedulingError):
            RoundScheduler(spec).validate_round(scheduled)

    def test_oversubscription_detected(self, registry):
        spec = ClusterSpec.from_counts({"v100": 1}, registry=registry)
        scheduled = [
            ScheduledCombination(combination=(0,), accelerator_name="v100", scale_factor=1, priority=1.0),
            ScheduledCombination(combination=(1,), accelerator_name="v100", scale_factor=1, priority=1.0),
        ]
        with pytest.raises(SchedulingError):
            RoundScheduler(spec).validate_round(scheduled)

    def test_valid_round_passes(self, registry):
        spec = ClusterSpec.from_counts({"v100": 2, "k80": 1}, registry=registry)
        scheduled = [
            ScheduledCombination(combination=(0,), accelerator_name="v100", scale_factor=2, priority=1.0),
            ScheduledCombination(combination=(1, 2), accelerator_name="k80", scale_factor=1, priority=1.0),
        ]
        RoundScheduler(spec).validate_round(scheduled)


class TestLongRunConvergence:
    def test_received_fractions_converge_to_allocation(self, registry):
        """Simulating many rounds, time fractions approach X_opt (Figure 13b's premise)."""
        spec = ClusterSpec.from_counts({"v100": 1, "p100": 0, "k80": 0}, registry=registry)
        allocation = Allocation(
            registry,
            {
                (0,): np.array([0.75, 0.0, 0.0]),
                (1,): np.array([0.25, 0.0, 0.0]),
            },
        )
        tracker = PriorityTracker(allocation)
        scheduler = RoundScheduler(spec)
        for _ in range(100):
            scheduled = scheduler.schedule_round(tracker, {0: 1, 1: 1})
            for item in scheduled:
                tracker.record_time(item.combination, item.accelerator_name, 360.0)
        fractions = tracker.fractions()
        assert fractions[(0,)][0] == pytest.approx(0.75, abs=0.02)
        assert fractions[(1,)][0] == pytest.approx(0.25, abs=0.02)


class TestTieBreakDeterminism:
    def test_tied_priorities_schedule_identically_across_runs(self, registry):
        """Repeated rounds over tied candidates must pick the same winners."""
        spec = ClusterSpec.from_counts({"v100": 1, "p100": 1, "k80": 0}, registry=registry)
        entries = {(i,): np.array([0.25, 0.25, 0.0]) for i in range(8)}
        scale_factors = {i: 1 for i in range(8)}
        schedules = []
        for _ in range(10):
            tracker = _tracker(registry, dict(entries))
            scheduled = RoundScheduler(spec).schedule_round(tracker, scale_factors)
            schedules.append(
                tuple((item.combination, item.accelerator_name) for item in scheduled)
            )
        assert len(set(schedules)) == 1

    def test_tie_break_independent_of_entry_insertion_order(self, registry):
        """The schedule is a function of allocation values, not dict ordering."""
        spec = ClusterSpec.from_counts({"v100": 2, "p100": 1, "k80": 1}, registry=registry)
        entries = {(i,): np.array([0.3, 0.3, 0.3]) for i in range(6)}
        scale_factors = {i: 1 for i in range(6)}
        baseline = None
        for ordering in (list(entries), list(reversed(list(entries)))):
            tracker = _tracker(registry, {key: entries[key] for key in ordering})
            scheduled = RoundScheduler(spec).schedule_round(tracker, scale_factors)
            snapshot = tuple(
                (item.combination, item.accelerator_name) for item in scheduled
            )
            if baseline is None:
                baseline = snapshot
            assert snapshot == baseline

    def test_nan_priority_skipped_not_scheduled(self, registry):
        """NaN priorities must not poison the sort order (non-total comparisons)."""
        spec = ClusterSpec.from_counts({"v100": 1, "p100": 1, "k80": 1}, registry=registry)
        allocation = Allocation(
            registry,
            {
                (0,): np.array([1.0, 0.0, 0.0]),
                (1,): np.array([0.0, 1.0, 0.0]),
            },
        )
        tracker = PriorityTracker(allocation)
        priorities = tracker.priorities()
        priorities[(0,)][0] = float("nan")

        class _PatchedTracker:
            allocation = tracker.allocation

            @staticmethod
            def priorities():
                return priorities

        scheduled = RoundScheduler(spec).schedule_round(_PatchedTracker(), {0: 1, 1: 1})
        assert all(item.combination != (0,) for item in scheduled)
        assert any(item.combination == (1,) for item in scheduled)
