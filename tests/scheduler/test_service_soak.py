"""Soak and snapshot-compaction tests for the ClusterScheduler service.

The soak scenario drives one long-lived scheduler through hundreds of
submits, cancels, resizes and policy swaps and asserts that nothing grows
without bound: the engine's matrix rows track the active set, the live LP's
columns are recycled (the released-variable pool drains back into new rows
instead of the program growing), and the pinned session solve history stays
within the configured cap.

Jobs are deliberately short (a few rounds each) so completions — and with
them allocation recomputations, row removals and column releases — happen
continuously throughout the run.
"""

import math

import pytest

from repro.cluster import ClusterSpec
from repro.core import make_policy
from repro.core.session import IncrementalProgramSession
from repro.exceptions import ConfigurationError
from repro.scheduler import ClusterScheduler, SchedulerConfig
from repro.workloads import Job, ThroughputOracle

#: Single-worker job types mixing fast and slow models (and with beneficial
#: colocations between them, so space-sharing rows churn too).
_SOAK_TYPES = [
    "resnet18-bs16",
    "resnet50-bs16",
    "resnet18-bs32",
    "resnet50-bs32",
    "resnet18-bs64",
    "resnet18-bs128",
]


@pytest.fixture(scope="module")
def oracle():
    return ThroughputOracle()


@pytest.fixture(scope="module")
def soak_jobs():
    """A few hundred short jobs (each completes within a handful of rounds)."""
    return [
        Job(
            job_id=i,
            job_type=_SOAK_TYPES[i % len(_SOAK_TYPES)],
            total_steps=900.0 + 250.0 * (i % 5),
            arrival_time=0.0,
        )
        for i in range(320)
    ]


def _result_fingerprint(result):
    return (
        {j: r.completion_time for j, r in result.records.items()},
        {j: r.cost_dollars for j, r in result.records.items()},
        {j: r.steps_done for j, r in result.records.items()},
        result.end_time,
        result.num_rounds,
        result.busy_worker_seconds,
        result.total_cost_dollars,
    )


class TestSoakChurn:
    def test_long_horizon_churn_is_bounded(self, oracle, soak_jobs):
        """Hundreds of submits/cancels/resizes/swaps leave no unbounded state."""
        spec = ClusterSpec.from_counts({"v100": 2, "p100": 2, "k80": 2})
        config = SchedulerConfig(
            round_duration_seconds=360.0, max_session_history=8, seed=0
        )
        scheduler = ClusterScheduler(
            make_policy("max_min_fairness+ss"), spec, oracle=oracle, config=config
        )

        max_active = 10
        num_vars_seen = []
        engine_rows_seen = []
        history_seen = []
        for job in soak_jobs[:max_active]:
            scheduler.submit(job)
        next_job = max_active
        swaps = ["fifo+ss", "max_min_fairness+ss"]

        for event in range(160):
            scheduler.step()
            status = scheduler.status()
            # Cancel an active job every fourth event to force row removals
            # beyond natural completions, and keep the active set topped up.
            if event % 4 == 0 and status.active_job_ids:
                scheduler.cancel(status.active_job_ids[0])
            status = scheduler.status()
            in_flight = len(status.active_job_ids) + len(status.pending_job_ids)
            while in_flight < max_active and next_job < len(soak_jobs):
                scheduler.submit(soak_jobs[next_job])
                next_job += 1
                in_flight += 1
            if event % 40 == 20:
                scheduler.resize({"v100": +1})
            if event % 40 == 39:
                scheduler.resize({"v100": -1})
            if event % 60 == 45:
                scheduler.swap_policy(swaps[(event // 60) % len(swaps)])
            engine_rows_seen.append(scheduler._engine.num_rows())
            history_seen.append(len(scheduler._session_history))
            session = scheduler._session
            if isinstance(session, IncrementalProgramSession):
                num_vars_seen.append(session.program.num_variables())

        assert next_job > 150, "soak should have cycled through much of the job list"

        # Engine rows track the active set: at most n singletons plus all
        # beneficial pairs over n = max_active single-worker jobs.
        max_rows = max_active + max_active * (max_active - 1) // 2
        assert max(engine_rows_seen) <= max_rows

        # Live LP columns are recycled, not grown: the column count is
        # bounded by the peak row count times worker types (plus epigraph
        # slack), independent of how many jobs churned through.
        assert num_vars_seen, "incremental session never observed"
        columns_bound = (max_rows * 3) * 2 + 64
        assert max(num_vars_seen) <= columns_bound

        # The pinned solve history respects the configured cap, so snapshot
        # size is bounded too.
        assert max(history_seen) <= config.max_session_history
        assert len(scheduler.snapshot().session_history) <= config.max_session_history

    def test_released_variable_pool_drains(self, oracle):
        """Recycled columns are consumed by later arrivals (pool does not leak)."""
        spec = ClusterSpec.from_counts({"v100": 2, "p100": 2, "k80": 2})
        scheduler = ClusterScheduler(
            make_policy("max_min_fairness+ss"),
            spec,
            oracle=oracle,
            config=SchedulerConfig(round_duration_seconds=360.0),
        )
        # Long-running jobs: nothing completes on its own during the test.
        long_jobs = [
            Job(
                job_id=i,
                job_type=_SOAK_TYPES[i % len(_SOAK_TYPES)],
                total_steps=500_000.0,
                arrival_time=0.0,
            )
            for i in range(12)
        ]
        for job in long_jobs[:8]:
            scheduler.submit(job)
        scheduler.step()
        program = scheduler._session.program
        baseline = program.num_variables()
        # Cancel three jobs, then top back up: the replacement rows must
        # reuse the released columns instead of growing the program.
        for job_id in scheduler.status().active_job_ids[:3]:
            scheduler.cancel(job_id)
        scheduler.step()
        free_after_cancel = len(program._free_variables)
        assert free_after_cancel > 0
        for job in long_jobs[8:11]:
            scheduler.submit(job)
        scheduler.step()
        assert program.num_variables() <= baseline + 8
        assert len(program._free_variables) < free_after_cancel


class TestContinuousSoak:
    def test_continuous_churn_keeps_state_bounded(self, oracle, soak_jobs):
        """The event loop leaves no unbounded state under steady churn.

        Engine rows must track the active set (not the total churn count),
        the pinned solve history must respect its cap, and scheduled control
        events must drain off the central heap instead of accumulating.
        """
        spec = ClusterSpec.from_counts({"v100": 2, "p100": 2, "k80": 2})
        config = SchedulerConfig(mode="continuous", max_session_history=8, seed=0)
        scheduler = ClusterScheduler(
            make_policy("max_min_fairness+ss"), spec, oracle=oracle, config=config
        )
        max_active = 10
        engine_rows_seen = []
        heap_seen = []
        history_seen = []
        for job in soak_jobs[:max_active]:
            scheduler.submit(job)
        next_job = max_active
        for event in range(160):
            if not scheduler.step():
                break
            status = scheduler.status()
            # Queue a scheduled cancel a little into the future every fourth
            # event so the central heap sees steady traffic (cancels landing
            # on already-finished jobs are skipped, which is fine here).
            if event % 4 == 0 and status.active_job_ids:
                scheduler.schedule_cancel(
                    status.active_job_ids[0], at=status.current_time + 30.0
                )
            status = scheduler.status()
            in_flight = len(status.active_job_ids) + len(status.pending_job_ids)
            while in_flight < max_active and next_job < len(soak_jobs):
                scheduler.submit(soak_jobs[next_job])
                next_job += 1
                in_flight += 1
            engine_rows_seen.append(scheduler._engine.num_rows())
            heap_seen.append(scheduler.status().num_queued_events)
            history_seen.append(len(scheduler._session_history))

        assert next_job > 100, "soak should have cycled through much of the job list"
        max_rows = max_active + max_active * (max_active - 1) // 2
        assert max(engine_rows_seen) <= max_rows
        # The control heap holds only the not-yet-due cancels (one queued per
        # four events, each 30 simulated seconds out) — it never accumulates.
        assert max(heap_seen) <= 12
        assert max(history_seen) <= config.max_session_history
        scheduler.run_until(math.inf)
        assert scheduler.status().num_queued_events == 0
        # Continuous mode incorporates every churn event at its instant.
        assert scheduler.result().mean_allocation_staleness_seconds() == 0.0


class TestWaterFillingSoak:
    """Churn soak for the water-filling family's persistent level-loop sessions."""

    @pytest.mark.parametrize("spec", ["max_min_fairness_water_filling", "hierarchical+ss"])
    def test_churn_keeps_level_loop_program_bounded(self, oracle, soak_jobs, spec):
        """Submits/cancels/completions leave no unbounded state in the session.

        The level-loop program's columns must track the active set (released
        variables are recycled, not grown; the bottleneck MILP runs on a
        throwaway program, so its indicator columns never enter the live one),
        the engine's rows must track the active set, and the pinned solve
        history must respect the cap.
        """
        cluster = ClusterSpec.from_counts({"v100": 2, "p100": 2, "k80": 2})
        config = SchedulerConfig(
            round_duration_seconds=360.0, max_session_history=6, seed=0
        )
        scheduler = ClusterScheduler(
            make_policy(spec), cluster, oracle=oracle, config=config
        )
        max_active = 8
        for job in soak_jobs[:max_active]:
            scheduler.submit(job)
        next_job = max_active
        num_vars_seen = []
        engine_rows_seen = []
        history_seen = []
        for event in range(60):
            scheduler.step()
            status = scheduler.status()
            if event % 5 == 0 and status.active_job_ids:
                scheduler.cancel(status.active_job_ids[-1])
            status = scheduler.status()
            in_flight = len(status.active_job_ids) + len(status.pending_job_ids)
            while in_flight < max_active and next_job < len(soak_jobs):
                scheduler.submit(soak_jobs[next_job])
                next_job += 1
                in_flight += 1
            engine_rows_seen.append(scheduler._engine.num_rows())
            history_seen.append(len(scheduler._session_history))
            session = scheduler._session
            if isinstance(session, IncrementalProgramSession):
                num_vars_seen.append(session.program.num_variables())

        assert next_job > 40, "soak should have cycled through much of the job list"
        max_rows = max_active + max_active * (max_active - 1) // 2
        assert max(engine_rows_seen) <= max_rows
        assert num_vars_seen, "water-filling session never observed"
        # Allocation columns (rows x 3 types) + the epigraph variable, plus
        # headroom for transiently larger row sets between engine syncs;
        # independent of churn count.
        columns_bound = max_rows * 3 + 1 + 2 * max_active + 32
        assert max(num_vars_seen) <= columns_bound
        assert max(history_seen) <= config.max_session_history

    @pytest.mark.parametrize("spec", ["max_min_fairness_water_filling", "hierarchical"])
    def test_mid_churn_snapshot_restores_deterministically(self, oracle, soak_jobs, spec):
        """A snapshot between rounds replays the level-loop session byte-exactly.

        The restored scheduler rebuilds the warm program by replaying the
        pinned solve history — including every level-loop edit sequence — so
        its forward run must match the uninterrupted one exactly.
        """
        cluster = ClusterSpec.from_counts({"v100": 2, "p100": 2, "k80": 2})
        config = SchedulerConfig(round_duration_seconds=360.0, seed=0)

        def fresh():
            return ClusterScheduler(
                make_policy(spec), cluster, oracle=oracle, config=config
            )

        scheduler = fresh()
        for job in soak_jobs[:10]:
            scheduler.submit(job)
        for _ in range(7):
            scheduler.step()
        checkpoint = scheduler.snapshot()
        assert len(checkpoint.session_history) > 1
        scheduler.run_until(math.inf)
        reference = _result_fingerprint(scheduler.result())

        resumed = fresh().restore(checkpoint)
        resumed.run_until(math.inf)
        assert _result_fingerprint(resumed.result()) == reference


class TestSnapshotCompaction:
    def test_compact_validates_and_truncates(self, oracle, soak_jobs):
        spec = ClusterSpec.from_counts({"v100": 1, "p100": 1, "k80": 1})
        scheduler = ClusterScheduler(
            make_policy("max_min_fairness"), spec, oracle=oracle
        )
        for job in soak_jobs[:6]:
            scheduler.submit(job)
        for _ in range(8):
            scheduler.step()
        snapshot = scheduler.snapshot()
        assert len(snapshot.session_history) > 2
        with pytest.raises(ConfigurationError):
            snapshot.compact(0)
        compacted = snapshot.compact(2)
        assert len(compacted.session_history) == 2
        assert compacted.session_history[0][1] is None
        # The original snapshot is untouched.
        assert len(snapshot.session_history) > 2

    @pytest.mark.parametrize("policy", ["max_min_fairness+ss", "fifo"])
    def test_compacted_snapshot_restores_to_same_forward_results(
        self, oracle, soak_jobs, policy
    ):
        """Full-history and compacted restores produce identical forward runs.

        Compaction only guarantees a *valid, deterministic* restore (see
        ``SchedulerSnapshot.compact``): a cold session may in general select
        a different equally-optimal vertex than the warm one.  These
        scenarios are ones where the optimum is unique, so the forward runs
        must agree exactly — guarding the replay plumbing itself.
        """
        spec = ClusterSpec.from_counts({"v100": 2, "p100": 2, "k80": 2})

        def fresh():
            return ClusterScheduler(
                make_policy(policy),
                spec,
                oracle=oracle,
                config=SchedulerConfig(round_duration_seconds=360.0),
            )

        scheduler = fresh()
        for job in soak_jobs[:10]:
            scheduler.submit(job)
        for _ in range(4):
            scheduler.step()
        snapshot = scheduler.snapshot()
        compacted = snapshot.compact(1)

        full_restore = fresh().restore(snapshot)
        compact_restore = fresh().restore(compacted)
        full_restore.run_until(math.inf)
        compact_restore.run_until(math.inf)
        assert _result_fingerprint(full_restore.result()) == _result_fingerprint(
            compact_restore.result()
        )

    def test_bounded_history_run_matches_results_shape(self, oracle, soak_jobs):
        """max_session_history bounds checkpoint size without corrupting a run."""
        spec = ClusterSpec.from_counts({"v100": 2, "p100": 2, "k80": 2})

        def run(max_history):
            scheduler = ClusterScheduler(
                make_policy("max_min_fairness"),
                spec,
                oracle=oracle,
                config=SchedulerConfig(
                    round_duration_seconds=360.0, max_session_history=max_history
                ),
            )
            for job in soak_jobs[:10]:
                scheduler.submit(job)
            scheduler.run_until(math.inf)
            return scheduler

        bounded = run(4)
        unbounded = run(None)
        assert len(bounded._session_history) <= 4
        # Every job still completes, and in this unique-optimum scenario the
        # bounded run's schedule matches the unbounded one exactly (in
        # general a cold re-base may pick a different equally-optimal
        # allocation — see SchedulerConfig.max_session_history).
        assert _result_fingerprint(bounded.result()) == _result_fingerprint(
            unbounded.result()
        )
