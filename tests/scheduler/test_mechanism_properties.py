"""Property-based tests for the round-based scheduling mechanism.

For random valid allocations and cluster shapes, every round produced by
Algorithm 1 must (a) never run a job twice, (b) never oversubscribe an
accelerator type, and (c) over many rounds drive the received time fractions
towards the target allocation (the mechanism's fidelity claim, §7.5).
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.cluster import ClusterSpec, default_registry
from repro.core import Allocation
from repro.scheduler import PriorityTracker, RoundScheduler

_REGISTRY = default_registry()


@st.composite
def _allocation_and_cluster(draw):
    num_jobs = draw(st.integers(2, 6))
    counts = {
        "v100": draw(st.integers(1, 3)),
        "p100": draw(st.integers(0, 3)),
        "k80": draw(st.integers(0, 3)),
    }
    cluster = ClusterSpec.from_counts(counts, registry=_REGISTRY)
    capacity = cluster.counts_vector()
    raw = np.array(
        [[draw(st.floats(0.0, 1.0)) for _ in range(3)] for _ in range(num_jobs)]
    )
    # Normalize rows to keep per-job totals <= 1.
    for row in range(num_jobs):
        total = raw[row].sum()
        if total > 1.0:
            raw[row] /= total
    # Scale columns down to respect worker capacity.
    for column in range(3):
        usage = raw[:, column].sum()
        if usage > capacity[column]:
            raw[:, column] *= 0.0 if capacity[column] == 0 else capacity[column] / usage
    allocation = Allocation(_REGISTRY, {(i,): raw[i] for i in range(num_jobs)})
    return allocation, cluster


class TestMechanismProperties:
    @given(data=_allocation_and_cluster())
    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_rounds_always_valid(self, data):
        allocation, cluster = data
        tracker = PriorityTracker(allocation)
        scheduler = RoundScheduler(cluster)
        scale_factors = {job_id: 1 for job_id in allocation.job_ids}
        for _ in range(5):
            scheduled = scheduler.schedule_round(tracker, scale_factors)
            scheduler.validate_round(scheduled)
            for item in scheduled:
                tracker.record_time(item.combination, item.accelerator_name, 360.0)

    @given(data=_allocation_and_cluster())
    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_fractions_track_targets_over_many_rounds(self, data):
        allocation, cluster = data
        tracker = PriorityTracker(allocation)
        scheduler = RoundScheduler(cluster)
        scale_factors = {job_id: 1 for job_id in allocation.job_ids}
        for _ in range(80):
            scheduled = scheduler.schedule_round(tracker, scale_factors)
            for item in scheduled:
                tracker.record_time(item.combination, item.accelerator_name, 360.0)
        fractions = tracker.fractions()
        totals = tracker.total_time_per_type()
        capacity = cluster.counts_vector()
        column_targets = [
            sum(allocation.row(other)[column] for other in allocation.combinations)
            for column in range(3)
        ]
        contended = [
            column_targets[column] >= capacity[column] - 1e-9 for column in range(3)
        ]
        for combination in allocation.combinations:
            target = allocation.row(combination)
            for column in range(3):
                # Only compare on accelerator types that actually received
                # work, have a meaningful target, and are *contended* — when
                # capacity exceeds the total demand every job simply runs all
                # the time and the proportional-share prediction does not apply.
                if totals[column] == 0 or target[column] < 0.05:
                    continue
                if not contended[column]:
                    continue
                # The prediction also breaks under cross-column coupling: a
                # job can run at most once per round, so when any job sharing
                # this column also holds a meaningful target on an
                # *uncontended* column, it can soak up rounds there and skew
                # this column's shares.
                coupled = any(
                    allocation.row(other)[column] >= 0.05
                    and any(
                        not contended[other_column]
                        and allocation.row(other)[other_column] >= 0.05
                        for other_column in range(3)
                        if other_column != column
                    )
                    for other in allocation.combinations
                )
                if coupled:
                    continue
                expected = (
                    target[column] / column_targets[column]
                    if column_targets[column] > 0
                    else 0.0
                )
                assert fractions[combination][column] == pytest.approx(expected, abs=0.25)
