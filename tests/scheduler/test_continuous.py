"""Tests for the continuous (event-driven) scheduling mode.

``mode="continuous"`` runs the central event loop — arrivals, completions,
scheduled cancels/resizes/policy swaps, optional periodic re-solve ticks —
with ``ideal`` as its zero-overhead special case.  These tests pin:

* registry-wide byte-equivalence between the two modes under identical
  scheduled churn (via :func:`repro.harness.run_scheduler_mode_equivalence`);
* mid-churn snapshot→restore byte-determinism with a queued event heap
  (cancels/resizes/swaps in flight at snapshot time);
* the periodic re-solve tick machinery and its config validation;
* the time-to-first-allocation and allocation-staleness latency metrics;
* round mode converging toward continuous completion times as the round
  duration shrinks (the Figure 13 story).
"""

import heapq
import math

import pytest

from repro.cluster import ClusterSpec
from repro.core import available_policies, make_policy
from repro.exceptions import ConfigurationError, UnknownJobError
from repro.harness import run_scheduler_mode_equivalence, steady_state_job_ids
from repro.scheduler import ClusterScheduler, SchedulerConfig
from repro.workloads import Job, ThroughputOracle, TraceGenerator


@pytest.fixture(scope="module")
def oracle():
    return ThroughputOracle()


@pytest.fixture(scope="module")
def small_spec():
    return ClusterSpec.from_counts({"v100": 2, "p100": 2, "k80": 2})


def _scheduler(oracle, spec, policy="max_min_fairness", config=None):
    return ClusterScheduler(
        make_policy(policy) if isinstance(policy, str) else policy,
        spec,
        oracle=oracle,
        config=config,
    )


def _trace(oracle, num_jobs=10, jobs_per_hour=6.0, seed=5):
    return TraceGenerator(oracle).generate_continuous(
        num_jobs=num_jobs, jobs_per_hour=jobs_per_hour, seed=seed
    )


def _fingerprint(result):
    """Every per-job outcome plus the aggregate accumulators, bit-for-bit."""
    return (
        {
            j: (
                r.completion_time,
                r.steps_done,
                r.cost_dollars,
                r.cancelled,
                r.first_allocation_time,
            )
            for j, r in result.records.items()
        },
        result.end_time,
        result.num_rounds,
        result.busy_worker_seconds,
        result.total_cost_dollars,
        result.allocation_staleness_integral,
        result.num_allocation_stale_events,
    )


class TestModeEquivalenceRegistryWide:
    """Continuous must reproduce ideal byte-for-byte for every registry policy."""

    @pytest.mark.parametrize("spec", available_policies())
    def test_continuous_matches_ideal_under_churn(self, oracle, small_spec, spec):
        counters = run_scheduler_mode_equivalence(spec, oracle, small_spec)
        assert counters["jobs"] >= 5
        assert counters["cancel_events"] >= 1


class TestSnapshotRestoreMidChurn:
    def _loaded_scheduler(self, oracle, small_spec, mode="continuous"):
        config = SchedulerConfig(mode=mode, max_simulated_seconds=5_000_000.0)
        scheduler = _scheduler(oracle, small_spec, config=config)
        trace = _trace(oracle, num_jobs=12, jobs_per_hour=6.0, seed=7)
        for job in trace.jobs:
            scheduler.submit(job)
        # Queue churn both before and far after the snapshot point so the
        # serialized heap carries events in flight.
        scheduler.schedule_cancel(2, at=4_000.0)
        scheduler.schedule_cancel(5, at=40_000.0)
        scheduler.schedule_resize({"v100": +1}, at=50_000.0)
        scheduler.schedule_swap_policy("max_min_fairness_ss", at=60_000.0)
        return scheduler

    def test_mid_churn_snapshot_restore_is_byte_deterministic(self, oracle, small_spec):
        scheduler = self._loaded_scheduler(oracle, small_spec)
        scheduler.run_until(10_000.0)
        snapshot = scheduler.snapshot()
        # Events scheduled for after the snapshot instant are still queued.
        assert len(snapshot.event_heap) >= 3
        assert scheduler.status().num_queued_events >= 3

        restored = _scheduler(
            oracle,
            small_spec,
            config=SchedulerConfig(mode="continuous", max_simulated_seconds=5_000_000.0),
        )
        restored.restore(snapshot)
        scheduler.run_until()
        restored.run_until()
        assert _fingerprint(scheduler.result()) == _fingerprint(restored.result())
        assert scheduler.result().records[5].cancelled
        assert restored.status().num_queued_events == 0

    def test_snapshot_serializes_heap_in_deterministic_order(self, oracle, small_spec):
        scheduler = self._loaded_scheduler(oracle, small_spec)
        scheduler.run_until(10_000.0)
        snapshot = scheduler.snapshot()
        # The serialized heap is fully ordered by (time, seq) — no dependence
        # on the in-memory heap's internal layout.
        assert snapshot.event_heap == sorted(snapshot.event_heap)
        restored = _scheduler(
            oracle,
            small_spec,
            config=SchedulerConfig(mode="continuous", max_simulated_seconds=5_000_000.0),
        )
        restored.restore(snapshot)
        again = restored.snapshot()
        assert again.event_heap == snapshot.event_heap
        assert again.event_seq == snapshot.event_seq


class TestResolveTicks:
    def test_interval_requires_continuous_mode(self):
        with pytest.raises(ConfigurationError):
            SchedulerConfig(mode="round", resolve_interval_seconds=60.0)
        with pytest.raises(ConfigurationError):
            SchedulerConfig(mode="ideal", resolve_interval_seconds=60.0)

    def test_interval_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            SchedulerConfig(mode="continuous", resolve_interval_seconds=0.0)
        with pytest.raises(ConfigurationError):
            SchedulerConfig(mode="continuous", resolve_interval_seconds=-5.0)

    def test_ticks_add_grid_aligned_resolves(self, oracle, small_spec):
        interval = 500.0
        config = SchedulerConfig(
            mode="continuous",
            resolve_interval_seconds=interval,
            max_simulated_seconds=5_000_000.0,
        )
        scheduler = _scheduler(oracle, small_spec, config=config)
        baseline = _scheduler(
            oracle,
            small_spec,
            config=SchedulerConfig(mode="continuous", max_simulated_seconds=5_000_000.0),
        )
        trace = _trace(oracle, num_jobs=6, jobs_per_hour=4.0, seed=3)
        for sched in (scheduler, baseline):
            for job in trace.jobs:
                sched.submit(job)
            sched.run_until()
        ticked = scheduler.result()
        untouched = baseline.result()
        # Ticks insert extra event boundaries without losing any work.
        assert ticked.num_rounds > untouched.num_rounds
        assert ticked.completion_rate() == 1.0
        # Grid alignment: some solves land exactly on multiples of the
        # interval (pure function of the clock — no snapshot state needed).
        times = [problem.current_time for problem, _ in scheduler._session_history]
        on_grid = [
            t for t in times if t > 0 and math.isclose(t % interval, 0.0, abs_tol=1e-6)
        ]
        assert on_grid, f"no grid-aligned solves among {times}"

    def test_ticked_run_is_deterministic(self, oracle, small_spec):
        def run():
            config = SchedulerConfig(
                mode="continuous",
                resolve_interval_seconds=350.0,
                max_simulated_seconds=5_000_000.0,
            )
            scheduler = _scheduler(oracle, small_spec, config=config)
            for job in _trace(oracle, num_jobs=8, jobs_per_hour=6.0, seed=9).jobs:
                scheduler.submit(job)
            scheduler.run_until()
            return _fingerprint(scheduler.result())

        assert run() == run()


class TestLatencyMetrics:
    def test_time_to_first_allocation_round_mode(self, oracle):
        # One v100 only: the second job waits until the first completes (FIFO
        # gives the whole cluster to the head of the queue).
        spec = ClusterSpec.from_counts({"v100": 1})
        config = SchedulerConfig(mode="round", round_duration_seconds=360.0)
        scheduler = _scheduler(oracle, spec, policy="fifo", config=config)
        scheduler.submit(
            Job(job_id=0, job_type="resnet18-bs64", total_steps=50_000.0, arrival_time=0.0)
        )
        scheduler.submit(
            Job(job_id=1, job_type="resnet18-bs64", total_steps=50_000.0, arrival_time=0.0)
        )
        scheduler.run_until()
        result = scheduler.result()
        record0, record1 = result.records[0], result.records[1]
        assert record0.time_to_first_allocation == 0.0
        assert record1.time_to_first_allocation is not None
        assert record1.time_to_first_allocation > 0.0
        # Job 1 first ran no earlier than job 0's completion round.
        assert record1.first_allocation_time >= record0.completion_time - 360.0
        values = result.time_to_first_allocation_values()
        assert len(values) == 2
        assert result.average_time_to_first_allocation_seconds() == pytest.approx(
            sum(values) / 2
        )

    def test_unallocated_job_has_no_latency_value(self, oracle, small_spec):
        scheduler = _scheduler(
            oracle, small_spec, config=SchedulerConfig(mode="round")
        )
        scheduler.submit(
            Job(job_id=0, job_type="resnet18-bs64", total_steps=1e9, arrival_time=1e8)
        )
        assert scheduler.result().records[0].time_to_first_allocation is None
        with pytest.raises(ConfigurationError):
            scheduler.result().average_time_to_first_allocation_seconds()

    def test_staleness_orders_by_reallocation_granularity(self, oracle, small_spec):
        # Staleness = mean delay before a churn event (arrival/completion/
        # control) is incorporated into a re-solve.  Round mode incorporates
        # at the next round boundary (~d/2 mean lag for duration d);
        # continuous mode re-solves at the event instant (exactly zero lag).
        trace = _trace(oracle, num_jobs=8, jobs_per_hour=6.0, seed=5)

        def staleness(config):
            scheduler = _scheduler(oracle, small_spec, config=config)
            for job in trace.jobs:
                scheduler.submit(job)
            scheduler.run_until()
            result = scheduler.result()
            assert result.num_allocation_stale_events > 0
            return result.mean_allocation_staleness_seconds()

        coarse = staleness(SchedulerConfig(mode="round", round_duration_seconds=2880.0))
        fine = staleness(SchedulerConfig(mode="round", round_duration_seconds=360.0))
        continuous = staleness(SchedulerConfig(mode="continuous"))
        assert continuous == 0.0
        assert 0.0 < fine < coarse
        # The mean lag scales with the round duration: coarse rounds are 8x
        # longer, so their mean incorporation lag is far above fine's, and
        # both sit in the same ballpark as d/2.
        assert fine < 360.0
        assert coarse > fine * 2

    def test_staleness_zero_before_any_execution(self, oracle, small_spec):
        scheduler = _scheduler(oracle, small_spec)
        assert scheduler.result().mean_allocation_staleness_seconds() == 0.0


class TestControlEventAPI:
    def test_schedule_cancel_unknown_job_rejected(self, oracle, small_spec):
        scheduler = _scheduler(oracle, small_spec)
        with pytest.raises(UnknownJobError):
            scheduler.schedule_cancel(99, at=100.0)

    @pytest.mark.parametrize("when", [-1.0, math.inf, math.nan])
    def test_invalid_event_times_rejected(self, oracle, small_spec, when):
        scheduler = _scheduler(oracle, small_spec)
        with pytest.raises(ConfigurationError):
            scheduler.schedule_resize({"v100": +1}, at=when)

    def test_queued_events_visible_in_status_and_drained(self, oracle, small_spec):
        config = SchedulerConfig(mode="continuous", max_simulated_seconds=5_000_000.0)
        scheduler = _scheduler(oracle, small_spec, config=config)
        scheduler.submit(
            Job(job_id=0, job_type="resnet18-bs64", total_steps=100_000.0, arrival_time=0.0)
        )
        scheduler.schedule_resize({"v100": +1}, at=1_000.0)
        scheduler.schedule_swap_policy("fifo", at=2_000.0)
        assert scheduler.status().num_queued_events == 2
        scheduler.run_until()
        assert scheduler.status().num_queued_events == 0
        assert scheduler.cluster_spec.count("v100") == 3
        assert "fifo" in scheduler.result().policy_name

    def test_round_mode_fires_events_at_round_boundaries(self, oracle, small_spec):
        config = SchedulerConfig(mode="round", round_duration_seconds=360.0)
        scheduler = _scheduler(oracle, small_spec, config=config)
        scheduler.submit(
            Job(job_id=0, job_type="resnet18-bs64", total_steps=100_000.0, arrival_time=0.0)
        )
        # Fires at the first round boundary at or after t=500 (i.e. 720).
        scheduler.schedule_resize({"v100": +1}, at=500.0)
        scheduler.run_until(700.0)
        assert scheduler.cluster_spec.count("v100") == 2
        scheduler.run_until(1100.0)
        assert scheduler.cluster_spec.count("v100") == 3

    def test_cancel_of_finished_job_is_skipped(self, oracle, small_spec):
        config = SchedulerConfig(mode="continuous", max_simulated_seconds=5_000_000.0)
        scheduler = _scheduler(oracle, small_spec, config=config)
        scheduler.submit(
            Job(job_id=0, job_type="resnet18-bs64", total_steps=100.0, arrival_time=0.0)
        )
        scheduler.schedule_cancel(0, at=4_000_000.0)
        scheduler.run_until()
        record = scheduler.result().records[0]
        assert record.completed
        assert not record.cancelled


class TestRoundConvergence:
    def test_round_jcts_approach_continuous_as_duration_shrinks(self, oracle, small_spec):
        trace = _trace(oracle, num_jobs=14, jobs_per_hour=4.0, seed=2)
        window = steady_state_job_ids(trace)

        def average_jct(config):
            scheduler = _scheduler(oracle, small_spec, config=config)
            for job in trace.jobs:
                scheduler.submit(job)
            scheduler.run_until()
            return scheduler.result().average_jct_hours(window)

        continuous = average_jct(SchedulerConfig(mode="continuous"))
        coarse = average_jct(SchedulerConfig(mode="round", round_duration_seconds=2880.0))
        fine = average_jct(SchedulerConfig(mode="round", round_duration_seconds=60.0))
        # The fine-grained round schedule must sit closer to the continuous
        # limit than the coarse one, and within a tight relative band.
        assert abs(fine - continuous) <= abs(coarse - continuous) + 1e-9
        assert fine == pytest.approx(continuous, rel=0.10)
