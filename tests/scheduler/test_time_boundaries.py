"""Regression tests for the service core's time-boundary semantics.

Two bugs lived here:

* ``step()``/``run_until()`` guarded the simulation cap with ``>`` instead of
  ``>=``, so a round *starting* exactly at ``max_simulated_seconds`` still
  executed and the clock overshot the configured maximum by a full round;
* ``_admit_arrivals`` admits jobs up to ``_ARRIVAL_EPSILON`` before their
  nominal arrival time, and ``_build_problem`` used to hide the resulting
  inconsistency by clamping ``time_elapsed`` with ``max(0.0, ...)`` instead
  of recording the true admission instant.

These tests pin the fixed behavior; each fails on the pre-fix code.
"""

import math

import pytest

from repro.cluster import ClusterSpec
from repro.core import make_policy
from repro.scheduler import ClusterScheduler, SchedulerConfig
from repro.workloads import Job, ThroughputOracle


@pytest.fixture(scope="module")
def oracle():
    return ThroughputOracle()


@pytest.fixture(scope="module")
def small_spec():
    return ClusterSpec.from_counts({"v100": 2, "p100": 2, "k80": 2})


def _scheduler(oracle, spec, config, policy="max_min_fairness"):
    return ClusterScheduler(make_policy(policy), spec, oracle=oracle, config=config)


def _huge_job(job_id=0, arrival_time=0.0):
    return Job(
        job_id=job_id,
        job_type="resnet18-bs64",
        total_steps=1e12,
        arrival_time=arrival_time,
    )


class TestSimulationCapBoundary:
    """A step may start strictly before the cap, never at or past it."""

    def test_round_starting_exactly_at_cap_does_not_execute(self, oracle, small_spec):
        # cap = 2 rounds exactly: rounds start at 0 and 360; a third round
        # would start at 720 == cap and (pre-fix) push the clock to 1080.
        config = SchedulerConfig(
            mode="round", round_duration_seconds=360.0, max_simulated_seconds=720.0
        )
        scheduler = _scheduler(oracle, small_spec, config)
        scheduler.submit(_huge_job())
        scheduler.run_until()
        result = scheduler.result()
        assert result.end_time == 720.0
        assert result.num_rounds == 2

    def test_step_returns_false_at_exact_cap(self, oracle, small_spec):
        config = SchedulerConfig(
            mode="round", round_duration_seconds=360.0, max_simulated_seconds=360.0
        )
        scheduler = _scheduler(oracle, small_spec, config)
        scheduler.submit(_huge_job())
        assert scheduler.step()  # the round starting at 0 runs
        assert not scheduler.step()  # the round starting at 360 == cap must not
        assert scheduler.result().end_time == 360.0

    def test_run_until_final_clamp_never_parks_past_cap(self, oracle, small_spec):
        config = SchedulerConfig(
            mode="round", round_duration_seconds=360.0, max_simulated_seconds=720.0
        )
        scheduler = _scheduler(oracle, small_spec, config)
        scheduler.submit(_huge_job())
        # A finite horizon beyond the cap must clamp the final advance to the
        # cap, not the horizon.
        scheduler.run_until(10_000.0)
        assert scheduler.result().end_time == 720.0

    def test_capacity_accounting_stops_at_cap(self, oracle, small_spec):
        # Overshooting the cap also inflated capacity worker-seconds; with
        # the >= guard both busy and capacity integrate over exactly the cap.
        config = SchedulerConfig(
            mode="round", round_duration_seconds=360.0, max_simulated_seconds=720.0
        )
        scheduler = _scheduler(oracle, small_spec, config)
        scheduler.submit(_huge_job())
        scheduler.run_until()
        capacity = scheduler.result().capacity_worker_seconds
        assert capacity["v100"] == pytest.approx(2 * 720.0)

    @pytest.mark.parametrize("mode", ["ideal", "continuous"])
    def test_fluid_modes_respect_the_same_boundary(self, oracle, small_spec, mode):
        # Fluid steps are atomic (they run to the next event, which here is
        # the job's completion far past the cap), but no step may *start* at
        # or past the cap: an arrival exactly at the cap never executes.
        config = SchedulerConfig(mode=mode, max_simulated_seconds=720.0)
        scheduler = _scheduler(oracle, small_spec, config)
        scheduler.submit(_huge_job(job_id=0, arrival_time=720.0))
        scheduler.run_until()
        result = scheduler.result()
        assert result.num_rounds == 0
        assert result.records[0].steps_done == 0.0
        assert result.end_time == 720.0


class TestEpsilonAdmission:
    """Epsilon-early admissions must never feed negative elapsed time to policies."""

    def test_admission_time_is_never_before_arrival(self, oracle, small_spec):
        # With a job active from t=0, round boundaries sit at multiples of
        # 360; a second job arriving 1e-10 *after* a boundary is within
        # _ARRIVAL_EPSILON and gets admitted early at that boundary.  The
        # clock must be nudged to the true admission instant: pre-fix the
        # solve saw current_time=360 with an arrival in its future (and a
        # max(0.0, ...) clamp downstream hiding the negative elapsed time).
        arrival = 360.0 + 1e-10
        config = SchedulerConfig(mode="round", round_duration_seconds=360.0)
        scheduler = _scheduler(oracle, small_spec, config)
        scheduler.submit(_huge_job(job_id=0, arrival_time=0.0))
        scheduler.submit(_huge_job(job_id=1, arrival_time=arrival))
        scheduler.step()  # round at 0: job 0 only
        scheduler.step()  # round at 360: admits job 1 epsilon-early
        problem, _ = scheduler._session_history[-1]
        assert 1 in problem.jobs
        assert problem.current_time >= arrival
        assert all(value >= 0.0 for value in problem.time_elapsed.values())

    @pytest.mark.parametrize("policy", ["max_min_fairness", "finish_time_fairness"])
    @pytest.mark.parametrize("mode", ["round", "ideal"])
    def test_elapsed_time_stays_non_negative_under_churn(
        self, oracle, small_spec, policy, mode
    ):
        # Several jobs arriving epsilon-early relative to the admitting
        # step's clock; every problem snapshot handed to LAS/FTF solves must
        # carry non-negative elapsed times without any masking clamp.
        config = SchedulerConfig(mode=mode, round_duration_seconds=360.0)
        scheduler = _scheduler(oracle, small_spec, config, policy=policy)
        scheduler.submit(
            Job(job_id=0, job_type="resnet18-bs64", total_steps=200_000.0, arrival_time=0.0)
        )
        for index in range(1, 4):
            # Epsilon above each round boundary: admitted early at that
            # boundary in round mode.
            scheduler.submit(
                Job(
                    job_id=index,
                    job_type="resnet18-bs64",
                    total_steps=200_000.0,
                    arrival_time=index * 360.0 + 1e-10,
                )
            )
        scheduler.run_until(3600.0)
        assert scheduler._session_history, "no solves recorded"
        for problem, _ in scheduler._session_history:
            for job_id, elapsed in problem.time_elapsed.items():
                assert elapsed >= 0.0, (
                    f"job {job_id} saw negative elapsed {elapsed} at "
                    f"t={problem.current_time}"
                )
            assert all(
                problem.current_time >= job.arrival_time - 1e-12
                for job in problem.jobs.values()
            )

    def test_elapsed_measures_time_since_admission(self, oracle, small_spec):
        # A job that waited in the pending queue (cluster saturated is not
        # needed — just a later arrival) accrues elapsed time from its
        # *admission*, which for a normal arrival equals its arrival time.
        config = SchedulerConfig(mode="round", round_duration_seconds=360.0)
        scheduler = _scheduler(oracle, small_spec, config)
        scheduler.submit(_huge_job(job_id=0, arrival_time=0.0))
        scheduler.submit(_huge_job(job_id=1, arrival_time=500.0))
        scheduler.run_until(1440.0)
        problem, _ = scheduler._session_history[-1]
        now = problem.current_time
        assert problem.time_elapsed[0] == pytest.approx(now)
        # Job 1 arrived at 500 but was admitted at the first round boundary
        # at or after that (720); elapsed counts from the admission instant.
        assert problem.time_elapsed[1] == pytest.approx(now - 720.0)
