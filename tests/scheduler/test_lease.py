"""Tests for the GavelIterator-style lease API."""

import pytest

from repro.exceptions import SchedulingError
from repro.scheduler import CheckpointStore, GavelIterator, Lease


class TestCheckpointStore:
    def test_save_and_load(self):
        store = CheckpointStore()
        store.save(3, {"iteration": 10})
        assert store.load(3) == {"iteration": 10}
        assert store.has_checkpoint(3)
        assert store.saves == 1 and store.loads == 1

    def test_missing_checkpoint_returns_none(self):
        store = CheckpointStore()
        assert store.load(5) is None
        assert not store.has_checkpoint(5)


class TestLease:
    def test_dataclass_fields(self):
        lease = Lease(job_id=1, worker_id=2, round_index=0)
        assert lease.renewed


class TestGavelIterator:
    def _make(self, data, renew_until_round, iterations_per_round=10):
        store = CheckpointStore()
        saves = []

        def load_checkpoint(job_id):
            state = store.load(job_id)
            return state["iteration"] if state else None

        def save_checkpoint(job_id, iteration):
            saves.append(iteration)
            store.save(job_id, {"iteration": iteration})

        def lease_oracle(job_id, round_index):
            return round_index < renew_until_round

        iterator = GavelIterator(
            data,
            job_id=0,
            load_checkpoint=load_checkpoint,
            save_checkpoint=save_checkpoint,
            lease_oracle=lease_oracle,
            iterations_per_round=iterations_per_round,
        )
        return iterator, store, saves

    def test_runs_to_completion_when_lease_always_renewed(self):
        iterator, _store, saves = self._make(range(35), renew_until_round=100)
        consumed = list(iterator)
        assert len(consumed) == 35
        assert saves == []

    def test_stops_and_checkpoints_when_lease_expires(self):
        iterator, store, saves = self._make(range(100), renew_until_round=2, iterations_per_round=10)
        consumed = list(iterator)
        # Two full rounds of 10 iterations, then the lease is not renewed.
        assert len(consumed) == 20
        assert saves == [20]
        assert store.has_checkpoint(0)
        assert not iterator.lease_active

    def test_resumes_from_checkpoint(self):
        iterator, store, _saves = self._make(range(100), renew_until_round=1, iterations_per_round=10)
        list(iterator)
        assert store.load(0)["iteration"] == 10

        # A second incarnation of the job resumes at iteration 10.
        resumed, _, _ = self._make(range(100), renew_until_round=100, iterations_per_round=10)
        # Re-wire the new iterator to the old store by loading from it.
        def load_checkpoint(job_id):
            state = store.load(job_id)
            return state["iteration"] if state else None

        second = GavelIterator(
            range(100),
            job_id=0,
            load_checkpoint=load_checkpoint,
            save_checkpoint=lambda job_id, iteration: None,
            lease_oracle=lambda job_id, round_index: True,
            iterations_per_round=10,
        )
        list(second)
        assert second.iteration >= 100

    def test_round_index_advances(self):
        iterator, _, _ = self._make(range(30), renew_until_round=100, iterations_per_round=10)
        list(iterator)
        assert iterator.round_index == 3

    def test_invalid_iterations_per_round(self):
        with pytest.raises(SchedulingError):
            GavelIterator(
                range(5),
                job_id=0,
                load_checkpoint=lambda job_id: None,
                save_checkpoint=lambda job_id, iteration: None,
                lease_oracle=lambda job_id, round_index: True,
                iterations_per_round=0,
            )
