"""Tests for the per-round priority tracker (Figure 4)."""

import math

import numpy as np
import pytest

from repro.cluster import default_registry
from repro.core import Allocation
from repro.exceptions import SchedulingError
from repro.scheduler import PriorityTracker


@pytest.fixture
def allocation():
    registry = default_registry()
    return Allocation(
        registry,
        {
            (0,): np.array([0.6, 0.4, 0.0]),
            (1,): np.array([0.2, 0.6, 0.2]),
            (2,): np.array([0.2, 0.0, 0.8]),
        },
    )


class TestTimeAccounting:
    def test_initial_time_is_zero(self, allocation):
        tracker = PriorityTracker(allocation)
        np.testing.assert_allclose(tracker.time_received((0,)), [0.0, 0.0, 0.0])

    def test_record_time_accumulates(self, allocation):
        tracker = PriorityTracker(allocation)
        tracker.record_time((0,), "v100", 360.0)
        tracker.record_time((0,), "v100", 360.0)
        assert tracker.time_received((0,))[0] == pytest.approx(720.0)

    def test_negative_time_rejected(self, allocation):
        tracker = PriorityTracker(allocation)
        with pytest.raises(SchedulingError):
            tracker.record_time((0,), "v100", -1.0)

    def test_unknown_combination_rejected(self, allocation):
        tracker = PriorityTracker(allocation)
        with pytest.raises(SchedulingError):
            tracker.record_time((9,), "v100", 1.0)

    def test_total_time_per_type(self, allocation):
        tracker = PriorityTracker(allocation)
        tracker.record_time((0,), "v100", 100.0)
        tracker.record_time((1,), "v100", 300.0)
        np.testing.assert_allclose(tracker.total_time_per_type(), [400.0, 0.0, 0.0])


class TestFractionsAndPriorities:
    def test_fractions_normalize_per_type(self, allocation):
        tracker = PriorityTracker(allocation)
        tracker.record_time((0,), "v100", 300.0)
        tracker.record_time((1,), "v100", 100.0)
        fractions = tracker.fractions()
        assert fractions[(0,)][0] == pytest.approx(0.75)
        assert fractions[(1,)][0] == pytest.approx(0.25)

    def test_priority_zero_when_target_zero(self, allocation):
        tracker = PriorityTracker(allocation)
        priorities = tracker.priorities()
        assert priorities[(0,)][2] == 0.0  # job 0 target on K80 is 0

    def test_priority_infinite_before_any_time(self, allocation):
        tracker = PriorityTracker(allocation)
        priorities = tracker.priorities()
        assert math.isinf(priorities[(0,)][0])

    def test_underserved_combination_has_higher_priority(self, allocation):
        """Figure 4: jobs that received less than their target get higher priority."""
        tracker = PriorityTracker(allocation)
        # Job 0 has hogged the V100; jobs 1 and 2 received nothing on it.
        tracker.record_time((0,), "v100", 900.0)
        tracker.record_time((1,), "v100", 100.0)
        tracker.record_time((2,), "v100", 100.0)
        priorities = tracker.priorities()
        assert priorities[(1,)][0] > priorities[(0,)][0]
        assert priorities[(2,)][0] > priorities[(0,)][0]

    def test_matched_allocation_gives_equal_priorities(self, allocation):
        """When received fractions exactly match the target, priorities are all 1."""
        tracker = PriorityTracker(allocation)
        for combination in allocation.combinations:
            for column, name in enumerate(allocation.registry.names):
                target = allocation.row(combination)[column]
                if target > 0:
                    tracker.record_time(combination, name, target * 1000.0)
        priorities = tracker.priorities()
        for combination in allocation.combinations:
            for column in range(3):
                if allocation.row(combination)[column] > 0:
                    assert priorities[combination][column] == pytest.approx(1.0)

    def test_paper_figure4_example(self):
        """The worked example of Figure 4: rounds_received = [[3,1,0],[1,3,0],[0,0,4]]."""
        registry = default_registry()
        x_example = Allocation(
            registry,
            {
                (0,): np.array([0.6, 0.4, 0.0]),
                (1,): np.array([0.2, 0.6, 0.2]),
                (2,): np.array([0.2, 0.0, 0.8]),
            },
        )
        tracker = PriorityTracker(x_example)
        rounds_received = {(0,): [3, 1, 0], (1,): [1, 3, 0], (2,): [0, 0, 4]}
        for combination, rounds in rounds_received.items():
            for column, name in enumerate(registry.names):
                if rounds[column]:
                    tracker.record_time(combination, name, float(rounds[column]))
        priorities = tracker.priorities()
        # Figure 4 reports priorities 0.2/0.4/0 for job 0, 0.2/0.2/inf for job 1
        # and inf/0/0.2 for job 2 (element-wise X / fraction-of-rounds).
        assert priorities[(0,)][0] == pytest.approx(0.6 / 0.75)
        assert priorities[(0,)][1] == pytest.approx(0.4 / 0.25)
        assert math.isinf(priorities[(1,)][2])
        assert math.isinf(priorities[(2,)][0])
        assert priorities[(2,)][2] == pytest.approx(0.8 / 1.0)
