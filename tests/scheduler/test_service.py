"""Tests for the event-driven ClusterScheduler service."""

import math

import numpy as np
import pytest

from repro.cluster import ClusterSpec
from repro.core import make_policy
from repro.core.effective_throughput import effective_throughput
from repro.core.problem import PolicyProblem
from repro.exceptions import ConfigurationError, SchedulingError, UnknownJobError
from repro.scheduler import ClusterScheduler, SchedulerConfig, VirtualClock, WallClock
from repro.simulator import Simulator, SimulatorConfig
from repro.workloads import Job, ThroughputOracle, Trace, TraceGenerator


@pytest.fixture(scope="module")
def oracle():
    return ThroughputOracle()


@pytest.fixture(scope="module")
def small_spec():
    return ClusterSpec.from_counts({"v100": 2, "p100": 2, "k80": 2})


def _trace(oracle, num_jobs=10, jobs_per_hour=6.0, seed=5):
    return TraceGenerator(oracle).generate_continuous(
        num_jobs=num_jobs, jobs_per_hour=jobs_per_hour, seed=seed
    )


def _scheduler(oracle, spec, policy="max_min_fairness", config=None):
    return ClusterScheduler(
        make_policy(policy) if isinstance(policy, str) else policy,
        spec,
        oracle=oracle,
        config=config,
    )


def _result_fingerprint(result):
    """Everything a SimulationResult derives its metrics from, comparably."""
    return (
        {j: r.completion_time for j, r in result.records.items()},
        {j: r.cost_dollars for j, r in result.records.items()},
        {j: r.steps_done for j, r in result.records.items()},
        {j: r.preemptions for j, r in result.records.items()},
        {j: r.checkpoint_seconds for j, r in result.records.items()},
        result.end_time,
        result.num_rounds,
        result.busy_worker_seconds,
        result.capacity_worker_seconds,
        result.total_cost_dollars,
        result.isolated_durations,
        result.num_policy_recomputations,
        result.checkpoint_worker_seconds,
    )


class TestClocks:
    def test_virtual_clock_monotone(self):
        clock = VirtualClock()
        assert clock.now() == 0.0
        clock.advance_to(10.0)
        clock.advance_to(5.0)  # never rewinds
        assert clock.now() == 10.0

    def test_virtual_clock_negative_start_rejected(self):
        with pytest.raises(ConfigurationError):
            VirtualClock(start=-1.0)

    def test_wall_clock_advances_on_its_own(self):
        clock = WallClock()
        first = clock.now()
        clock.advance_to(first + 0.01)
        assert clock.now() >= first + 0.01


class TestTraceReplayParity:
    """submit-everything + run_until is exactly the simulator contract."""

    @pytest.mark.parametrize("mode", ["round", "ideal", "physical"])
    @pytest.mark.parametrize("policy", ["fifo", "max_min_fairness", "max_min_fairness+ss", "min_cost"])
    def test_manual_replay_matches_simulator(self, oracle, small_spec, policy, mode):
        trace = _trace(oracle)
        config = SchedulerConfig(mode=mode)
        simulated = Simulator(
            make_policy(policy), small_spec, oracle=oracle, config=config
        ).run(trace)

        scheduler = _scheduler(oracle, small_spec, policy, config)
        for job in trace.jobs:
            scheduler.submit(job)
        scheduler.run_until()
        assert _result_fingerprint(scheduler.result()) == _result_fingerprint(simulated)

    def test_simulator_config_is_scheduler_config(self):
        assert SimulatorConfig is SchedulerConfig


class TestSubmitCancel:
    def test_duplicate_submit_rejected(self, oracle, small_spec):
        scheduler = _scheduler(oracle, small_spec)
        job = Job(job_id=1, job_type="resnet18-bs64", total_steps=1000.0, arrival_time=0.0)
        scheduler.submit(job)
        with pytest.raises(ConfigurationError):
            scheduler.submit(job)

    def test_cancel_unknown_job_rejected(self, oracle, small_spec):
        scheduler = _scheduler(oracle, small_spec)
        with pytest.raises(UnknownJobError):
            scheduler.cancel(99)

    def test_cancel_pending_job_never_runs(self, oracle, small_spec):
        scheduler = _scheduler(oracle, small_spec)
        early = Job(job_id=0, job_type="resnet18-bs64", total_steps=200_000.0, arrival_time=0.0)
        late = Job(job_id=1, job_type="resnet18-bs64", total_steps=200_000.0, arrival_time=1e6)
        scheduler.submit(early)
        scheduler.submit(late)
        scheduler.cancel(1)
        scheduler.run_until()
        result = scheduler.result()
        assert result.records[0].completed
        assert result.records[1].cancelled
        assert not result.records[1].completed
        assert result.records[1].steps_done == 0.0

    def test_cancel_active_job_frees_capacity(self, oracle, small_spec):
        scheduler = _scheduler(oracle, small_spec)
        for i in range(4):
            scheduler.submit(
                Job(job_id=i, job_type="resnet18-bs64", total_steps=500_000.0, arrival_time=0.0)
            )
        scheduler.run_until(3600.0)
        recomputations_before = scheduler.status().num_policy_recomputations
        scheduler.cancel(0)
        assert 0 not in scheduler.status().active_job_ids
        scheduler.run_until()
        result = scheduler.result()
        assert scheduler.status().num_policy_recomputations > recomputations_before
        assert result.records[0].cancelled
        assert not result.records[0].completed
        assert 0 < result.records[0].steps_done < 500_000.0
        for i in (1, 2, 3):
            assert result.records[i].completed

    def test_cancelled_job_cannot_be_cancelled_twice(self, oracle, small_spec):
        scheduler = _scheduler(oracle, small_spec)
        scheduler.submit(
            Job(job_id=0, job_type="resnet18-bs64", total_steps=500_000.0, arrival_time=0.0)
        )
        scheduler.run_until(3600.0)
        scheduler.cancel(0)
        with pytest.raises(SchedulingError):
            scheduler.cancel(0)

    def test_submit_after_drain_resumes(self, oracle, small_spec):
        scheduler = _scheduler(oracle, small_spec)
        scheduler.submit(
            Job(job_id=0, job_type="resnet18-bs64", total_steps=50_000.0, arrival_time=0.0)
        )
        scheduler.run_until()
        assert not scheduler.has_work
        drained_at = scheduler.now
        scheduler.submit(
            Job(job_id=1, job_type="resnet18-bs64", total_steps=50_000.0, arrival_time=drained_at)
        )
        assert scheduler.has_work
        scheduler.run_until()
        assert scheduler.result().records[1].completed


class TestResize:
    def test_grow_speeds_up_completion(self, oracle):
        spec = ClusterSpec.from_counts({"v100": 1, "p100": 1, "k80": 1})
        jobs = [
            Job(job_id=i, job_type="resnet18-bs64", total_steps=400_000.0, arrival_time=0.0)
            for i in range(6)
        ]

        plain = _scheduler(oracle, spec)
        for job in jobs:
            plain.submit(job)
        plain.run_until()
        baseline_end = plain.result().end_time

        grown = _scheduler(oracle, spec)
        for job in jobs:
            grown.submit(job)
        grown.run_until(3600.0)
        grown.resize({"v100": +3})
        assert grown.cluster_spec.count("v100") == 4
        grown.run_until()
        result = grown.result()
        assert result.end_time < baseline_end
        assert all(record.completed for record in result.records.values())

    def test_capacity_accounting_integrates_epochs(self, oracle):
        spec = ClusterSpec.from_counts({"v100": 1, "p100": 1, "k80": 1})
        scheduler = _scheduler(oracle, spec)
        for i in range(4):
            scheduler.submit(
                Job(job_id=i, job_type="resnet18-bs64", total_steps=400_000.0, arrival_time=0.0)
            )
        scheduler.run_until(7200.0)
        resize_time = scheduler.now
        scheduler.resize({"v100": +1})
        scheduler.run_until()
        result = scheduler.result()
        expected_v100 = 1 * resize_time + 2 * (result.end_time - resize_time)
        assert result.capacity_worker_seconds["v100"] == pytest.approx(expected_v100)
        assert result.capacity_worker_seconds["k80"] == pytest.approx(result.end_time)
        assert 0.0 < result.utilization() <= 1.0

    def test_shrink_keeps_schedule_feasible(self, oracle):
        spec = ClusterSpec.from_counts({"v100": 2, "p100": 2, "k80": 2})
        scheduler = _scheduler(oracle, spec)
        for i in range(5):
            scheduler.submit(
                Job(job_id=i, job_type="resnet18-bs64", total_steps=400_000.0, arrival_time=0.0)
            )
        scheduler.run_until(3600.0)
        scheduler.resize({"v100": -1, "p100": -1})
        scheduler.run_until()
        result = scheduler.result()
        assert all(record.completed for record in result.records.values())
        assert result.utilization() <= 1.0 + 1e-9

    def test_resize_accepts_full_spec(self, oracle, small_spec):
        scheduler = _scheduler(oracle, small_spec)
        new_spec = ClusterSpec.from_counts(
            {"v100": 4, "p100": 1, "k80": 1}, registry=small_spec.registry
        )
        assert scheduler.resize(new_spec) is new_spec
        assert scheduler.cluster_spec.count("v100") == 4

    def test_resize_unknown_type_rejected(self, oracle, small_spec):
        scheduler = _scheduler(oracle, small_spec)
        with pytest.raises(ConfigurationError):
            scheduler.resize({"tpu": +1})

    def test_resize_below_zero_rejected(self, oracle, small_spec):
        scheduler = _scheduler(oracle, small_spec)
        with pytest.raises(ConfigurationError):
            scheduler.resize({"v100": -5})


class TestSwapPolicy:
    def test_swap_changes_decisions_and_completes(self, oracle, small_spec):
        trace = _trace(oracle, num_jobs=8)
        scheduler = _scheduler(oracle, small_spec, "max_min_fairness")
        for job in trace.jobs:
            scheduler.submit(job)
        scheduler.run_until(20_000.0)
        old = scheduler.swap_policy("fifo")
        assert old.name == "max_min_fairness"
        assert scheduler.policy.name == "fifo"
        scheduler.run_until()
        result = scheduler.result()
        assert result.policy_name.startswith("fifo")
        assert all(record.completed for record in result.records.values())

    def test_swap_to_space_sharing_rebuilds_engine(self, oracle, small_spec):
        trace = _trace(oracle, num_jobs=8)
        scheduler = _scheduler(oracle, small_spec, "max_min_fairness")
        for job in trace.jobs:
            scheduler.submit(job)
        scheduler.run_until(20_000.0)
        assert not scheduler._engine.space_sharing
        scheduler.swap_policy("max_min_fairness+ss")
        assert scheduler._engine.space_sharing
        assert set(scheduler._engine.job_ids) == set(scheduler.status().active_job_ids)
        scheduler.run_until()
        assert all(record.completed for record in scheduler.result().records.values())

    def test_swap_starts_new_allocation_period(self, oracle, small_spec):
        scheduler = _scheduler(oracle, small_spec)
        for i in range(3):
            scheduler.submit(
                Job(job_id=i, job_type="resnet18-bs64", total_steps=500_000.0, arrival_time=0.0)
            )
        scheduler.run_until(3600.0)
        before = scheduler.status().num_policy_recomputations
        scheduler.swap_policy("fifo")
        scheduler.step()
        assert scheduler.status().num_policy_recomputations == before + 1


class TestStatusAndStepping:
    def test_status_reports_progress(self, oracle, small_spec):
        trace = _trace(oracle, num_jobs=6)
        scheduler = _scheduler(oracle, small_spec)
        for job in trace.jobs:
            scheduler.submit(job)
        initial = scheduler.status()
        assert initial.has_work
        assert initial.num_rounds == 0
        assert len(initial.pending_job_ids) == 6
        scheduler.run_until(30_000.0)
        middle = scheduler.status()
        assert middle.num_rounds > 0
        assert middle.current_time >= 30_000.0
        scheduler.run_until()
        final = scheduler.status()
        assert not final.has_work
        assert len(final.completed_job_ids) == 6
        assert final.policy_name == "max_min_fairness"

    def test_step_is_one_round(self, oracle, small_spec):
        scheduler = _scheduler(oracle, small_spec)
        scheduler.submit(
            Job(job_id=0, job_type="resnet18-bs64", total_steps=1e9, arrival_time=0.0)
        )
        assert scheduler.step()
        assert scheduler.status().num_rounds == 1
        assert scheduler.now == pytest.approx(360.0)

    def test_step_without_work_is_a_no_op(self, oracle, small_spec):
        scheduler = _scheduler(oracle, small_spec)
        assert not scheduler.step()
        assert scheduler.status().num_rounds == 0

    def test_run_until_overshoots_at_most_one_round(self, oracle, small_spec):
        scheduler = _scheduler(oracle, small_spec)
        scheduler.submit(
            Job(job_id=0, job_type="resnet18-bs64", total_steps=1e9, arrival_time=0.0)
        )
        scheduler.run_until(1000.0)
        assert 1000.0 <= scheduler.now <= 1000.0 + 360.0

    def test_run_until_idles_to_horizon(self, oracle, small_spec):
        scheduler = _scheduler(oracle, small_spec)
        scheduler.submit(
            Job(job_id=0, job_type="resnet18-bs64", total_steps=1000.0, arrival_time=50_000.0)
        )
        scheduler.run_until(10_000.0)
        assert scheduler.now == pytest.approx(10_000.0)
        assert scheduler.status().num_rounds == 0  # arrival is beyond the horizon
        scheduler.run_until()
        assert scheduler.result().records[0].completed


class TestAggregatedScheduling:
    def test_type_mode_runs_with_aggregated_session(self, oracle, small_spec):
        from repro.core.aggregation import AggregatedSession

        config = SchedulerConfig(aggregation="type")
        scheduler = _scheduler(oracle, small_spec, "max_min_fairness", config)
        for job in _trace(oracle, num_jobs=8).jobs:
            scheduler.submit(job)
        scheduler.run_until()
        assert isinstance(scheduler._session, AggregatedSession)
        assert all(record.completed for record in scheduler.result().records.values())

    def test_type_mode_rejects_unsupported_policy(self, oracle, small_spec):
        config = SchedulerConfig(aggregation="type")
        with pytest.raises(ConfigurationError, match="aggregation"):
            _scheduler(oracle, small_spec, "finish_time_fairness", config)

    def test_swap_policy_applies_aggregation_mode(self, oracle, small_spec):
        config = SchedulerConfig(aggregation="type")
        scheduler = _scheduler(oracle, small_spec, "max_min_fairness", config)
        swapped = scheduler.swap_policy("min_cost")
        assert swapped.aggregation == "type"
        # The water-filling family aggregates too since the level loop runs
        # over group representatives.
        swapped = scheduler.swap_policy("hierarchical")
        assert swapped.aggregation == "type"
        with pytest.raises(ConfigurationError, match="aggregation"):
            scheduler.swap_policy("finish_time_fairness")

    @pytest.mark.parametrize("mode", ["round", "ideal", "physical"])
    @pytest.mark.parametrize(
        "policy", ["max_min_fairness_water_filling", "hierarchical"]
    )
    def test_aggregated_water_filling_snapshot_restore_is_deterministic(
        self, oracle, small_spec, policy, mode
    ):
        """Aggregated level-loop sessions replay byte-for-byte from a snapshot."""
        from repro.core.aggregation import AggregatedSession

        trace = _trace(oracle, num_jobs=10)
        config = SchedulerConfig(mode=mode, aggregation="type")

        uninterrupted = _scheduler(oracle, small_spec, policy, config)
        for job in trace.jobs:
            uninterrupted.submit(job)
        uninterrupted.run_until()
        reference = _result_fingerprint(uninterrupted.result())

        interrupted = _scheduler(oracle, small_spec, policy, config)
        for job in trace.jobs:
            interrupted.submit(job)
        interrupted.run_until(40_000.0)
        checkpoint = interrupted.snapshot()

        resumed = _scheduler(oracle, small_spec, policy, config)
        resumed.restore(checkpoint)
        assert isinstance(resumed._session, AggregatedSession)
        resumed.run_until()
        assert _result_fingerprint(resumed.result()) == reference

    def test_mid_churn_swap_into_aggregated_water_filling_restores(
        self, oracle, small_spec
    ):
        """swap_policy into an aggregated iterative policy survives snapshot/restore."""
        from repro.core.aggregation import AggregatedSession
        from repro.core.water_filling import WaterFillingSession

        trace = _trace(oracle, num_jobs=10)
        config = SchedulerConfig(aggregation="type")

        scheduler = _scheduler(oracle, small_spec, "max_min_fairness", config)
        for job in trace.jobs:
            scheduler.submit(job)
        scheduler.run_until(20_000.0)
        swapped = scheduler.swap_policy("max_min_fairness_water_filling")
        assert swapped.aggregation == "type"
        scheduler.run_until(60_000.0)  # several rounds of session history
        checkpoint = scheduler.snapshot()
        assert len(checkpoint.session_history) > 1
        scheduler.run_until()
        reference = _result_fingerprint(scheduler.result())

        resumed = _scheduler(oracle, small_spec, "max_min_fairness", config)
        resumed.restore(checkpoint)
        assert resumed.policy.name == "max_min_fairness_water_filling"
        assert isinstance(resumed._session, AggregatedSession)
        assert isinstance(resumed._session.inner, WaterFillingSession)
        resumed.run_until()
        assert _result_fingerprint(resumed.result()) == reference

    @pytest.mark.parametrize("policy", ["max_min_fairness", "max_min_fairness+ss"])
    def test_snapshot_restore_is_deterministic_under_type_mode(
        self, oracle, small_spec, policy
    ):
        trace = _trace(oracle, num_jobs=10)
        config = SchedulerConfig(aggregation="type")

        uninterrupted = _scheduler(oracle, small_spec, policy, config)
        for job in trace.jobs:
            uninterrupted.submit(job)
        uninterrupted.run_until()
        reference = _result_fingerprint(uninterrupted.result())

        interrupted = _scheduler(oracle, small_spec, policy, config)
        for job in trace.jobs:
            interrupted.submit(job)
        interrupted.run_until(40_000.0)
        checkpoint = interrupted.snapshot()

        resumed = _scheduler(oracle, small_spec, policy, config)
        resumed.restore(checkpoint)
        resumed.run_until()
        assert _result_fingerprint(resumed.result()) == reference


class TestSnapshotRestore:
    @pytest.mark.parametrize("mode", ["round", "ideal", "physical"])
    @pytest.mark.parametrize(
        "policy",
        [
            "fifo",
            "max_min_fairness",
            "max_min_fairness+ss",
            "makespan",
            "min_cost",
            "max_min_fairness_water_filling",
        ],
    )
    def test_interrupt_and_resume_is_deterministic(self, oracle, small_spec, policy, mode):
        """Resuming a mid-trace snapshot reproduces the uninterrupted run exactly."""
        trace = _trace(oracle, num_jobs=10)
        config = SchedulerConfig(mode=mode)

        uninterrupted = _scheduler(oracle, small_spec, policy, config)
        for job in trace.jobs:
            uninterrupted.submit(job)
        uninterrupted.run_until()
        reference = _result_fingerprint(uninterrupted.result())

        interrupted = _scheduler(oracle, small_spec, policy, config)
        for job in trace.jobs:
            interrupted.submit(job)
        interrupted.run_until(40_000.0)
        checkpoint = interrupted.snapshot()

        resumed = _scheduler(oracle, small_spec, policy, config)
        resumed.restore(checkpoint)
        resumed.run_until()
        assert _result_fingerprint(resumed.result()) == reference

    def test_rollback_on_same_instance(self, oracle, small_spec):
        trace = _trace(oracle, num_jobs=8)
        scheduler = _scheduler(oracle, small_spec)
        for job in trace.jobs:
            scheduler.submit(job)
        scheduler.run_until(30_000.0)
        checkpoint = scheduler.snapshot()
        scheduler.run_until()
        first = _result_fingerprint(scheduler.result())
        scheduler.restore(checkpoint)
        assert scheduler.now == pytest.approx(checkpoint.time)
        scheduler.run_until()
        assert _result_fingerprint(scheduler.result()) == first

    def test_snapshot_is_isolated_from_later_mutation(self, oracle, small_spec):
        scheduler = _scheduler(oracle, small_spec)
        for i in range(4):
            scheduler.submit(
                Job(job_id=i, job_type="resnet18-bs64", total_steps=400_000.0, arrival_time=0.0)
            )
        scheduler.run_until(3600.0)
        checkpoint = scheduler.snapshot()
        steps_at_checkpoint = {j: r.steps_done for j, r in checkpoint.records.items()}
        scheduler.run_until()
        assert {j: r.steps_done for j, r in checkpoint.records.items()} == steps_at_checkpoint

    def test_restore_preserves_online_events(self, oracle, small_spec):
        """A snapshot taken after cancel/resize restores the changed state."""
        trace = _trace(oracle, num_jobs=8)
        scheduler = _scheduler(oracle, small_spec)
        for job in trace.jobs:
            scheduler.submit(job)
        scheduler.run_until(20_000.0)
        victim = scheduler.status().active_job_ids[0]
        scheduler.cancel(victim)
        scheduler.resize({"v100": +1})
        scheduler.run_until(40_000.0)
        checkpoint = scheduler.snapshot()
        scheduler.run_until()
        reference = _result_fingerprint(scheduler.result())

        resumed = _scheduler(oracle, small_spec)
        resumed.restore(checkpoint)
        assert resumed.cluster_spec.count("v100") == 3
        assert resumed.status().cancelled_job_ids == (victim,)
        resumed.run_until()
        assert _result_fingerprint(resumed.result()) == reference

    def test_swap_to_water_filling_snapshot_restore_is_byte_deterministic(
        self, oracle, small_spec
    ):
        """swap_policy -> snapshot -> restore replays the water-filling session.

        Before water filling became sessionful its RebuildSession hit the
        replay skip in ``ClusterScheduler._replay_session``; now the pinned
        solve history must reconstruct the live level-loop program so the
        restored run matches the uninterrupted one byte for byte.
        """
        trace = _trace(oracle, num_jobs=10)

        def fresh():
            scheduler = _scheduler(oracle, small_spec, "max_min_fairness")
            for job in trace.jobs:
                scheduler.submit(job)
            return scheduler

        scheduler = fresh()
        scheduler.run_until(20_000.0)
        scheduler.swap_policy("max_min_fairness_water_filling")
        scheduler.run_until(60_000.0)  # several rounds of session history
        checkpoint = scheduler.snapshot()
        assert len(checkpoint.session_history) > 1
        scheduler.run_until()
        reference = _result_fingerprint(scheduler.result())

        resumed = _scheduler(oracle, small_spec, "max_min_fairness")
        resumed.restore(checkpoint)
        assert resumed.policy.name == "max_min_fairness_water_filling"
        from repro.core.water_filling import WaterFillingSession

        assert isinstance(resumed._session, WaterFillingSession)
        resumed.run_until()
        assert _result_fingerprint(resumed.result()) == reference

    def test_restore_requires_virtual_clock(self, oracle, small_spec):
        scheduler = _scheduler(oracle, small_spec)
        checkpoint = scheduler.snapshot()
        live = ClusterScheduler(
            make_policy("max_min_fairness"), small_spec, oracle=oracle, clock=WallClock()
        )
        with pytest.raises(ConfigurationError):
            live.restore(checkpoint)


class TestSessionCorrectnessUnderChurn:
    """The long-lived session agrees with from-scratch solves through churn."""

    @staticmethod
    def _las_objective(problem, matrix, allocation):
        """Max-min objective value: the minimum normalized effective throughput."""
        from repro.core.effective_throughput import isolated_reference_throughput

        worst = math.inf
        for job_id in problem.job_ids:
            achieved = effective_throughput(matrix, allocation, job_id)
            reference = isolated_reference_throughput(
                matrix,
                problem.cluster_spec,
                job_id,
                num_jobs=problem.num_jobs,
                scale_factor=problem.scale_factor(job_id),
            )
            if reference > 0:
                worst = min(worst, achieved / reference)
        return worst

    @pytest.mark.parametrize("policy_name", ["max_min_fairness", "min_cost"])
    def test_session_solution_matches_scratch_through_cancel_resize(
        self, oracle, policy_name
    ):
        spec = ClusterSpec.from_counts({"v100": 2, "p100": 2, "k80": 2})
        policy = make_policy(policy_name)
        scheduler = _scheduler(oracle, spec, policy)
        trace = _trace(oracle, num_jobs=12, jobs_per_hour=10.0)
        for job in trace.jobs:
            scheduler.submit(job)

        events = [
            (20_000.0, "cancel"),
            (30_000.0, "resize", {"v100": +2}),
            (45_000.0, "cancel"),
            (60_000.0, "resize", {"v100": -1, "k80": +1}),
        ]
        for event in events:
            scheduler.run_until(event[0])
            if event[1] == "cancel":
                active = scheduler.status().active_job_ids
                if active:
                    scheduler.cancel(active[-1])
            else:
                scheduler.resize(event[2])
            if not scheduler.status().active_job_ids:
                continue
            scheduler.step()  # recompute through the live session

            # Rebuild the same problem snapshot and solve it from scratch.
            session = scheduler._session
            problem = session.problem
            session_allocation = session.solve(problem)
            scratch_allocation = policy.compute_allocation(problem)
            session_allocation.validate(problem.cluster_spec)
            scratch_allocation.validate(problem.cluster_spec)
            matrix = policy.effective_matrix(problem)
            if policy_name == "max_min_fairness":
                session_value = self._las_objective(problem, matrix, session_allocation)
                scratch_value = self._las_objective(problem, matrix, scratch_allocation)
                assert session_value == pytest.approx(scratch_value, rel=1e-4)
            else:
                for job_id in problem.job_ids:
                    assert effective_throughput(
                        matrix, session_allocation, job_id
                    ) == pytest.approx(
                        effective_throughput(matrix, scratch_allocation, job_id), rel=1e-4, abs=1e-9
                    )
        scheduler.run_until()
        assert not scheduler.has_work

    @pytest.mark.parametrize("mode", ["round", "ideal", "physical"])
    def test_water_filling_session_matches_rebuild_in_every_mode(
        self, oracle, small_spec, mode
    ):
        """A full run on the live water-filling session matches RebuildSession.

        ``round`` mode — the paper's actual mechanism — must match byte for
        byte.  In the fluid/jittered modes allocations feed progress directly,
        so two equally-optimal level-loop vertices may split a job's time
        differently across accelerator types; there the per-job completion
        times must still agree to well under one round.
        """
        from repro.core.hierarchical import WaterFillingFairnessPolicy
        from repro.core.session import RebuildSession

        class ForcedRebuild(WaterFillingFairnessPolicy):
            def session(self, problem):
                return RebuildSession(self, problem)

        trace = _trace(oracle, num_jobs=10)
        config = SchedulerConfig(mode=mode)
        results = {}
        for label, policy in (
            ("session", make_policy("max_min_fairness_water_filling")),
            ("rebuild", ForcedRebuild()),
        ):
            scheduler = _scheduler(oracle, small_spec, policy, config)
            for job in trace.jobs:
                scheduler.submit(job)
            scheduler.run_until()
            results[label] = scheduler.result()
        session, rebuild = results["session"], results["rebuild"]
        if mode == "round":
            assert _result_fingerprint(session) == _result_fingerprint(rebuild)
            return
        assert session.num_rounds == rebuild.num_rounds
        for job_id, record in session.records.items():
            assert record.completion_time == pytest.approx(
                rebuild.records[job_id].completion_time,
                abs=config.round_duration_seconds,
                rel=1e-3,
            )
