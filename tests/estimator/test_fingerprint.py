"""Tests for fingerprint matching."""

import numpy as np
import pytest

from repro.estimator import cosine_similarity, nearest_reference
from repro.exceptions import EstimationError


class TestCosineSimilarity:
    def test_identical_vectors(self):
        assert cosine_similarity(np.array([1.0, 2.0]), np.array([2.0, 4.0])) == pytest.approx(1.0)

    def test_orthogonal_vectors(self):
        assert cosine_similarity(np.array([1.0, 0.0]), np.array([0.0, 1.0])) == pytest.approx(0.0)

    def test_zero_vector_gives_zero(self):
        assert cosine_similarity(np.zeros(3), np.ones(3)) == 0.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(EstimationError):
            cosine_similarity(np.ones(2), np.ones(3))


class TestNearestReference:
    def test_exact_match_found(self):
        references = np.array([[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.5, 0.5, 0.7]])
        index, similarity = nearest_reference(np.array([0.5, 0.5, 0.7]), references)
        assert index == 2
        assert similarity == pytest.approx(1.0)

    def test_masked_comparison(self):
        references = np.array([[1.0, 0.0], [0.0, 1.0]])
        fingerprint = np.array([1.0, 123.0])  # second coordinate unobserved garbage
        mask = np.array([True, False])
        index, _ = nearest_reference(fingerprint, references, mask=mask)
        assert index == 0

    def test_empty_mask_falls_back_to_full_comparison(self):
        references = np.array([[1.0, 0.0], [0.0, 1.0]])
        index, _ = nearest_reference(np.array([0.9, 0.1]), references, mask=np.array([False, False]))
        assert index == 0

    def test_no_references_rejected(self):
        with pytest.raises(EstimationError):
            nearest_reference(np.ones(2), np.empty((0, 2)))

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(EstimationError):
            nearest_reference(np.ones(2), np.ones((3, 4)))

    def test_mask_shape_mismatch_rejected(self):
        with pytest.raises(EstimationError):
            nearest_reference(np.ones(2), np.ones((3, 2)), mask=np.ones(3, dtype=bool))
