"""Tests for the end-to-end throughput estimator."""

import pytest

from repro.estimator import ThroughputEstimator
from repro.exceptions import EstimationError
from repro.workloads import ColocatedThroughputs, ColocationModel, ThroughputOracle


@pytest.fixture(scope="module")
def true_model():
    return ColocationModel(ThroughputOracle())


@pytest.fixture
def estimator(true_model):
    return ThroughputEstimator(true_model, profile_fraction=0.3, seed=0)


class TestConstruction:
    def test_invalid_profile_fraction(self, true_model):
        with pytest.raises(EstimationError):
            ThroughputEstimator(true_model, profile_fraction=0.0)

    def test_empty_reference_set_rejected(self, true_model):
        with pytest.raises(EstimationError):
            ThroughputEstimator(true_model, reference_job_types=[])


class TestEstimates:
    def test_memory_feasibility_is_exact(self, estimator, true_model):
        for pair in [("resnet50-bs128", "cyclegan-bs1"), ("a3c-bs4", "lstm-bs5")]:
            assert estimator.fits_in_memory(*pair, "v100") == true_model.fits_in_memory(
                *pair, "v100"
            )

    def test_estimates_close_to_truth_on_average(self, true_model):
        estimator = ThroughputEstimator(true_model, profile_fraction=0.4, seed=1)
        error = estimator.estimation_error(["resnet50-bs64", "a3c-bs4", "transformer-bs64"])
        assert error < 0.15

    def test_higher_profile_fraction_reduces_error(self, true_model):
        sparse = ThroughputEstimator(true_model, profile_fraction=0.15, seed=2)
        dense = ThroughputEstimator(true_model, profile_fraction=0.9, seed=2)
        types = ["resnet50-bs64", "lstm-bs20", "recoder-bs2048"]
        assert dense.estimation_error(types) <= sparse.estimation_error(types) + 0.02

    def test_colocated_throughputs_bounded_by_isolated(self, estimator, true_model):
        oracle = true_model.oracle
        pair = estimator.colocated_throughputs("resnet18-bs32", "lstm-bs20", "p100")
        assert 0 < pair.first <= oracle.throughput("resnet18-bs32", "p100") * 1.01
        assert 0 < pair.second <= oracle.throughput("lstm-bs20", "p100") * 1.01

    def test_infeasible_pair_estimated_as_infeasible(self, estimator):
        pair = estimator.colocated_throughputs("resnet50-bs128", "cyclegan-bs1", "v100")
        assert not pair.feasible

    def test_matched_reference_is_known_job_type(self, estimator, true_model):
        match = estimator.matched_reference("transformer-bs128")
        assert match in true_model.oracle.job_types.names

    def test_combined_normalized_interface(self, estimator):
        value = estimator.combined_normalized_throughput("a3c-bs4", "lstm-bs5", "v100")
        assert 0.0 < value <= 2.0
        assert isinstance(estimator.is_beneficial("a3c-bs4", "lstm-bs5", "v100"), bool)


class TestOnlineRefinement:
    def test_observation_overrides_estimate(self, estimator, true_model):
        oracle = true_model.oracle
        isolated = oracle.throughput("resnet18-bs32", "p100")
        measured = ColocatedThroughputs(first=isolated * 0.123, second=1.0)
        estimator.observe("resnet18-bs32", "lstm-bs20", "p100", measured)
        pair = estimator.colocated_throughputs("resnet18-bs32", "lstm-bs20", "p100")
        assert pair.first == pytest.approx(isolated * 0.123, rel=1e-6)
