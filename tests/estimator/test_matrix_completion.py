"""Tests for ALS matrix completion."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.estimator import complete_matrix
from repro.exceptions import EstimationError


def _low_rank_matrix(rows, cols, rank, seed=0):
    rng = np.random.default_rng(seed)
    u = rng.uniform(0.3, 1.0, size=(rows, rank))
    v = rng.uniform(0.3, 1.0, size=(cols, rank))
    return u @ v.T


class TestCompletion:
    def test_observed_entries_preserved(self):
        matrix = _low_rank_matrix(6, 6, 2)
        mask = np.random.default_rng(1).uniform(size=matrix.shape) < 0.6
        completed = complete_matrix(matrix, mask, rank=2)
        np.testing.assert_allclose(completed[mask], matrix[mask])

    def test_recovers_low_rank_structure(self):
        matrix = _low_rank_matrix(10, 10, 2, seed=3)
        mask = np.random.default_rng(4).uniform(size=matrix.shape) < 0.7
        completed = complete_matrix(matrix, mask, rank=3, num_iterations=80)
        missing = ~mask
        error = np.abs(completed[missing] - matrix[missing]).mean()
        assert error < 0.15 * matrix.mean()

    def test_rank_capped_at_matrix_size(self):
        matrix = _low_rank_matrix(3, 3, 1)
        mask = np.ones_like(matrix, dtype=bool)
        completed = complete_matrix(matrix, mask, rank=10)
        np.testing.assert_allclose(completed, matrix)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(EstimationError):
            complete_matrix(np.ones((2, 2)), np.ones((3, 3), dtype=bool))

    def test_no_observations_rejected(self):
        with pytest.raises(EstimationError):
            complete_matrix(np.ones((2, 2)), np.zeros((2, 2), dtype=bool))

    def test_non_2d_rejected(self):
        with pytest.raises(EstimationError):
            complete_matrix(np.ones(4), np.ones(4, dtype=bool))

    def test_invalid_rank_rejected(self):
        with pytest.raises(EstimationError):
            complete_matrix(np.ones((2, 2)), np.ones((2, 2), dtype=bool), rank=0)

    def test_deterministic_for_seed(self):
        matrix = _low_rank_matrix(6, 6, 2)
        mask = np.random.default_rng(5).uniform(size=matrix.shape) < 0.5
        first = complete_matrix(matrix, mask, rank=2, seed=9)
        second = complete_matrix(matrix, mask, rank=2, seed=9)
        np.testing.assert_allclose(first, second)

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=10, deadline=None)
    def test_completion_bounded_for_bounded_inputs(self, seed):
        """Completed values of a [0, 1] matrix stay in a sane numeric range."""
        matrix = np.clip(_low_rank_matrix(5, 5, 2, seed=seed), 0.0, 1.0)
        mask = np.random.default_rng(seed).uniform(size=matrix.shape) < 0.6
        if not mask.any():
            mask[0, 0] = True
        completed = complete_matrix(matrix, mask, rank=2)
        assert np.all(np.isfinite(completed))
        assert completed.max() < 10.0
