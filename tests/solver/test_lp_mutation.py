"""Tests for the mutable LinearProgram surface (handles, tags, warm re-solves)."""

import math

import numpy as np
import pytest

from repro.exceptions import InfeasibleError, SolverError
from repro.solver import LinearExpression, LinearProgram
from repro.solver.fractional import FractionalProgram


def _toy_program():
    lp = LinearProgram()
    x = lp.add_variable("x", upper=4.0)
    y = lp.add_variable("y", upper=3.0)
    handle = lp.add_less_equal(x + y, 5.0)
    lp.maximize(x * 2.0 + y)
    return lp, x, y, handle


class TestConstraintMutation:
    def test_remove_constraint_relaxes_program(self):
        lp, x, y, handle = _toy_program()
        assert lp.solve().objective_value == pytest.approx(9.0)
        lp.remove_constraint(handle)
        assert lp.solve().objective_value == pytest.approx(11.0)

    def test_set_constraint_bounds_changes_rhs_only(self):
        lp, x, y, handle = _toy_program()
        lp.solve()
        lp.set_constraint_bounds(handle, upper=6.0)
        assert lp.solve().objective_value == pytest.approx(10.0)
        lp.set_constraint_bounds(handle, upper=3.0)
        assert lp.solve().objective_value == pytest.approx(6.0 + 0.0)

    def test_add_and_remove_terms(self):
        lp, x, y, handle = _toy_program()
        z = lp.add_variable("z", upper=10.0)
        lp.add_terms_to_constraint(handle, {z.index: 1.0})
        lp.maximize(x * 2.0 + y + z * 3.0)
        solution = lp.solve()
        # z dominates: z=5, x=4 (bounds), x+y+z <= 5 forces x... x not in bound
        assert solution.value_of(z) + solution.value_of(x) + solution.value_of(y) <= 5.0 + 1e-9
        lp.remove_terms_from_constraint(handle, [z.index])
        solution = lp.solve()
        assert solution.value_of(z) == pytest.approx(10.0)

    def test_set_constraint_coefficients_replaces_row(self):
        lp, x, y, handle = _toy_program()
        lp.solve()
        lp.set_constraint_coefficients(handle, {x.index: 2.0, y.index: 2.0})
        solution = lp.solve()
        assert 2 * solution.value_of(x) + 2 * solution.value_of(y) <= 5.0 + 1e-9

    def test_unknown_handle_raises(self):
        lp, *_ = _toy_program()
        with pytest.raises(SolverError):
            lp.add_terms_to_constraint(9999, {0: 1.0})

    def test_rhs_edit_matches_fresh_program(self):
        """Warm-started re-solve equals a cold solve of the edited program."""
        lp, x, y, handle = _toy_program()
        lp.solve()
        lp.set_constraint_bounds(handle, upper=4.5)
        warm = lp.solve()

        fresh = LinearProgram()
        fx = fresh.add_variable("x", upper=4.0)
        fy = fresh.add_variable("y", upper=3.0)
        fresh.add_less_equal(fx + fy, 4.5)
        fresh.maximize(fx * 2.0 + fy)
        cold = fresh.solve()
        assert warm.objective_value == pytest.approx(cold.objective_value)
        assert warm.value_of(x) == pytest.approx(cold.value_of(fx))


class TestVariableRecycling:
    def test_release_and_reuse_index(self):
        lp = LinearProgram()
        x = lp.add_variable("x", upper=1.0)
        y = lp.add_variable("y", upper=1.0)
        lp.release_variable(y)
        z = lp.add_variable("z", upper=2.0)
        assert z.index == y.index
        assert lp.num_variables() == 2
        lp.maximize(x + z * 1.0)
        assert lp.solve().objective_value == pytest.approx(3.0)

    def test_released_variable_fixed_to_zero(self):
        lp = LinearProgram()
        x = lp.add_variable("x", upper=5.0)
        y = lp.add_variable("y", upper=5.0)
        lp.maximize(x + y * 1.0)
        assert lp.solve().objective_value == pytest.approx(10.0)
        lp.release_variable(y)
        lp.maximize({x.index: 1.0})
        solution = lp.solve()
        assert solution.value_of(y) == pytest.approx(0.0)


class TestTagScopes:
    def test_clear_tag_removes_scoped_state(self):
        lp = LinearProgram()
        x = lp.add_variable("x", upper=2.0)
        y = lp.add_variable("y", upper=2.0)
        lp.add_less_equal(x + y, 3.0)
        for _ in range(5):
            lp.clear_tag("objective")
            lp.begin_tag("objective")
            epigraph = lp.add_max_min_objective([x * 1.0, y * 1.0])
            lp.end_tag()
            solution = lp.solve()
            assert solution.value_of(epigraph) == pytest.approx(1.5)
        # Epigraph variables were recycled, not accumulated.
        assert lp.num_variables() == 3
        assert lp.num_constraints() == 3  # shared row + two epigraph rows

    def test_nested_tag_raises(self):
        lp = LinearProgram()
        lp.begin_tag("a")
        with pytest.raises(SolverError):
            lp.begin_tag("b")

    def test_fractional_tag_scope(self):
        fp = FractionalProgram()
        x = fp.add_variable("x", upper=1.0)
        y = fp.add_variable("y", upper=1.0)
        fp.begin_tag("objective")
        fp.add_greater_equal(x * 1.0, 0.25)
        fp.end_tag()
        fp.set_ratio_objective(x + y * 1.0, x * 1.0 + y * 2.0 + 0.1)
        first = fp.solve()
        assert first.value_of(x) >= 0.25 - 1e-9
        fp.clear_tag("objective")
        second = fp.solve()
        assert second.objective_value >= first.objective_value - 1e-9


class TestChurnEquivalence:
    def test_incremental_edits_match_fresh_build(self):
        """A long add/remove/edit sequence stays equivalent to a fresh program."""
        rng = np.random.default_rng(0)
        lp = LinearProgram()
        variables = [lp.add_variable(upper=1.0) for _ in range(6)]
        handles = {}
        state = {}
        for i in range(6):
            coefficients = {variables[j].index: 1.0 for j in range(6) if (i + j) % 2 == 0}
            handles[i] = lp.add_less_equal(coefficients, 2.0)
            state[i] = (dict(coefficients), 2.0)
        objective = {v.index: float(i + 1) for i, v in enumerate(variables)}
        lp.maximize(objective)

        for step in range(12):
            action = step % 3
            if action == 0:
                victim = rng.integers(0, 6)
                if int(victim) in handles:
                    lp.remove_constraint(handles.pop(int(victim)))
                    state.pop(int(victim))
            elif action == 1:
                key = 100 + step
                coefficients = {
                    variables[int(j)].index: float(rng.integers(1, 3))
                    for j in rng.choice(6, size=3, replace=False)
                }
                handles[key] = lp.add_less_equal(coefficients, 2.5)
                state[key] = (dict(coefficients), 2.5)
            else:
                key = next(iter(handles))
                lp.set_constraint_bounds(handles[key], upper=1.5)
                state[key] = (state[key][0], 1.5)

            fresh = LinearProgram()
            fresh_vars = [fresh.add_variable(upper=1.0) for _ in range(6)]
            for coefficients, rhs in state.values():
                fresh.add_less_equal(dict(coefficients), rhs)
            fresh.maximize({v.index: float(i + 1) for i, v in enumerate(fresh_vars)})
            assert lp.solve().objective_value == pytest.approx(
                fresh.solve().objective_value, rel=1e-9
            )
