"""Tests for the LP/MILP modeling layer."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import InfeasibleError, SolverError
from repro.solver import LinearExpression, LinearProgram


class TestLinearExpression:
    def test_variable_arithmetic(self):
        lp = LinearProgram()
        x = lp.add_variable("x")
        y = lp.add_variable("y")
        expression = x * 2.0 + y * 3.0 + 1.0
        assert expression.coefficients == {0: 2.0, 1: 3.0}
        assert expression.constant == 1.0

    def test_subtraction_and_scaling(self):
        lp = LinearProgram()
        x = lp.add_variable("x")
        expression = (x * 4.0 - 2.0) * 0.5
        assert expression.coefficients == {0: 2.0}
        assert expression.constant == -1.0

    def test_from_terms_merges_duplicates(self):
        lp = LinearProgram()
        x = lp.add_variable("x")
        expression = LinearExpression.from_terms([(x, 1.0), (x, 2.0)], constant=5.0)
        assert expression.coefficients == {0: 3.0}

    def test_value_evaluates_assignment(self):
        lp = LinearProgram()
        x = lp.add_variable("x")
        y = lp.add_variable("y")
        expression = x * 2.0 + y * (-1.0) + 0.5
        assert expression.value(np.array([3.0, 1.0])) == pytest.approx(5.5)


class TestLinearProgram:
    def test_simple_maximization(self):
        lp = LinearProgram()
        x = lp.add_variable("x", upper=4.0)
        y = lp.add_variable("y", upper=3.0)
        lp.add_less_equal(x + y, 5.0)
        lp.maximize(x * 2.0 + y)
        solution = lp.solve()
        assert solution.objective_value == pytest.approx(9.0)
        assert solution.value_of(x) == pytest.approx(4.0)
        assert solution.value_of(y) == pytest.approx(1.0)

    def test_simple_minimization_with_ge(self):
        lp = LinearProgram()
        x = lp.add_variable("x")
        lp.add_greater_equal(x * 3.0, 6.0)
        lp.minimize(x)
        assert lp.solve().objective_value == pytest.approx(2.0)

    def test_equality_constraint(self):
        lp = LinearProgram()
        x = lp.add_variable("x")
        y = lp.add_variable("y")
        lp.add_equal(x + y, 10.0)
        lp.maximize(x - y)
        solution = lp.solve()
        assert solution.value_of(x) + solution.value_of(y) == pytest.approx(10.0)

    def test_objective_constant_included(self):
        lp = LinearProgram()
        x = lp.add_variable("x", upper=1.0)
        lp.maximize(x + 5.0)
        assert lp.solve().objective_value == pytest.approx(6.0)

    def test_infeasible_raises(self):
        lp = LinearProgram()
        x = lp.add_variable("x", upper=1.0)
        lp.add_greater_equal(x, 2.0)
        lp.minimize(x)
        with pytest.raises(InfeasibleError):
            lp.solve()

    def test_no_variables_raises(self):
        with pytest.raises(SolverError):
            LinearProgram().solve()

    def test_max_min_objective(self):
        """max min(x, y) with x + y <= 1 gives 0.5 each."""
        lp = LinearProgram()
        x = lp.add_variable("x")
        y = lp.add_variable("y")
        lp.add_less_equal(x + y, 1.0)
        lp.add_max_min_objective([x * 1.0, y * 1.0])
        solution = lp.solve()
        assert solution.objective_value == pytest.approx(0.5, abs=1e-6)
        assert solution.value_of(x) == pytest.approx(0.5, abs=1e-6)

    def test_min_max_objective(self):
        """min max(x, y) with x + y >= 2 gives 1 each."""
        lp = LinearProgram()
        x = lp.add_variable("x")
        y = lp.add_variable("y")
        lp.add_greater_equal(x + y, 2.0)
        lp.add_min_max_objective([x * 1.0, y * 1.0])
        assert lp.solve().objective_value == pytest.approx(1.0, abs=1e-6)

    def test_milp_integer_variable(self):
        lp = LinearProgram()
        x = lp.add_variable("x", upper=10.0, integer=True)
        lp.add_less_equal(x * 1.0, 3.7)
        lp.maximize(x)
        solution = lp.solve()
        assert solution.value_of(x) == pytest.approx(3.0)

    def test_milp_knapsack(self):
        """0/1 knapsack with capacity 5: items (v, w) = (3,2), (4,3), (5,4)."""
        lp = LinearProgram()
        items = lp.add_variables(3, upper=1.0, integer=True)
        values = [3.0, 4.0, 5.0]
        weights = [2.0, 3.0, 4.0]
        lp.add_less_equal(
            LinearExpression.from_terms(zip(items, weights)), 5.0
        )
        lp.maximize(LinearExpression.from_terms(zip(items, values)))
        assert lp.solve().objective_value == pytest.approx(7.0)

    def test_num_constraints_counts_all(self):
        lp = LinearProgram()
        x = lp.add_variable("x")
        lp.add_less_equal(x, 1.0)
        lp.add_greater_equal(x, 0.1)
        lp.add_equal(x, 0.5)
        assert lp.num_constraints() == 3

    def test_unbounded_reports_solver_error(self):
        lp = LinearProgram()
        x = lp.add_variable("x")
        lp.maximize(x)
        with pytest.raises(SolverError):
            lp.solve()

    @given(
        capacity=st.floats(min_value=1.0, max_value=100.0),
        coefficients=st.lists(st.floats(min_value=0.1, max_value=10.0), min_size=2, max_size=6),
    )
    @settings(max_examples=25, deadline=None)
    def test_max_min_never_exceeds_equal_split_bound(self, capacity, coefficients):
        """Property: max-min over c_i * x_i with sum(x) <= C is c_min-limited."""
        lp = LinearProgram()
        variables = lp.add_variables(len(coefficients))
        lp.add_less_equal(
            LinearExpression.from_terms((v, 1.0) for v in variables), capacity
        )
        lp.add_max_min_objective([v * c for v, c in zip(variables, coefficients)])
        solution = lp.solve()
        # The optimum equals capacity / sum(1/c_i): verify against closed form.
        expected = capacity / sum(1.0 / c for c in coefficients)
        assert solution.objective_value == pytest.approx(expected, rel=1e-4)
