"""Tests for the monotone-feasibility bisection helper."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import ConfigurationError, InfeasibleError
from repro.solver import BisectionResult, bisect_min_feasible


class TestBisection:
    def test_finds_threshold(self):
        threshold = 3.7

        def predicate(value):
            return value if value >= threshold else None

        result = bisect_min_feasible(predicate, lower=0.0, upper=10.0, relative_tolerance=1e-4)
        assert isinstance(result, BisectionResult)
        assert result.value == pytest.approx(threshold, rel=1e-3)
        assert result.witness == pytest.approx(result.value)

    def test_feasible_lower_bound_short_circuits(self):
        result = bisect_min_feasible(lambda v: "ok", lower=1.0, upper=10.0)
        assert result.value == 1.0
        assert result.iterations == 1

    def test_infeasible_upper_bound_raises(self):
        with pytest.raises(InfeasibleError):
            bisect_min_feasible(lambda v: None, lower=0.0, upper=5.0)

    def test_invalid_interval(self):
        with pytest.raises(ConfigurationError):
            bisect_min_feasible(lambda v: v, lower=5.0, upper=1.0)

    def test_invalid_tolerance(self):
        with pytest.raises(ConfigurationError):
            bisect_min_feasible(lambda v: v, lower=0.0, upper=1.0, relative_tolerance=0.0)

    def test_witness_comes_from_feasible_point(self):
        def predicate(value):
            return {"value": value} if value >= 2.0 else None

        result = bisect_min_feasible(predicate, lower=0.0, upper=8.0)
        assert result.witness["value"] >= 2.0 - 1e-6

    def test_max_iterations_respected(self):
        calls = []

        def predicate(value):
            calls.append(value)
            return value if value >= 1.0 else None

        bisect_min_feasible(predicate, lower=0.0, upper=100.0, max_iterations=5)
        # upper probe + lower probe + at most (5 - 1) bisection probes
        assert len(calls) <= 6

    @given(threshold=st.floats(min_value=0.01, max_value=99.0))
    @settings(max_examples=30, deadline=None)
    def test_result_is_feasible_and_close(self, threshold):
        def predicate(value):
            return value if value >= threshold else None

        result = bisect_min_feasible(predicate, lower=0.0, upper=100.0, relative_tolerance=1e-3)
        assert result.value >= threshold - 1e-9
        assert result.value <= max(threshold * 1.01, threshold + 0.2)
