"""Regression tests: HiGHS edit/solve statuses must be checked, not dropped.

PR 6 fixed an ``addRows`` whose rejection was silently ignored, leaving the
live model desynchronised from the program.  These tests wrap the live
backend in a proxy that forces ``kError`` from individual calls and assert
the backend surfaces it as :class:`SolverError` instead of answering from a
diverged model.
"""

import pytest

from repro.exceptions import SolverError
from repro.solver import LinearProgram

try:
    from scipy.optimize._highspy import _core as _highs_core
except ImportError:  # pragma: no cover - exercised only without highspy
    _highs_core = None

pytestmark = pytest.mark.skipif(
    _highs_core is None, reason="highspy backend not available"
)


class _ForcedError:
    """Delegating proxy that performs the real call but reports ``kError``."""

    def __init__(self, real, failing_method):
        self._real = real
        self._failing_method = failing_method

    def __getattr__(self, name):
        attribute = getattr(self._real, name)
        if name != self._failing_method:
            return attribute

        def forced(*args, **kwargs):
            attribute(*args, **kwargs)
            return _highs_core.HighsStatus.kError

        return forced


def _warm_program():
    lp = LinearProgram(name="status-guard")
    x = lp.add_variable("x", upper=4.0)
    y = lp.add_variable("y", upper=3.0)
    lp.add_less_equal(x + y, 5.0)
    lp.maximize(x * 2.0 + y)
    lp.solve()  # instantiate the warm-started backend
    assert lp._backend is not None
    return lp, x, y


def test_run_error_raises_solver_error():
    lp, _x, _y = _warm_program()
    lp._backend._highs = _ForcedError(lp._backend._highs, "run")
    with pytest.raises(SolverError, match="run failed"):
        lp.solve()


def test_add_rows_error_raises_solver_error():
    lp, x, y = _warm_program()
    lp._backend._highs = _ForcedError(lp._backend._highs, "addRows")
    lp.add_less_equal(x - y, 1.0)  # forces an addRows on the next replay
    with pytest.raises(SolverError, match="addRows failed"):
        lp.solve()


def test_delete_rows_error_raises_solver_error():
    lp, x, y = _warm_program()
    handle = lp.add_less_equal(x - y, 1.0)
    lp.solve()
    lp._backend._highs = _ForcedError(lp._backend._highs, "deleteRows")
    lp.remove_constraint(handle)
    with pytest.raises(SolverError, match="deleteRows failed"):
        lp.solve()
