"""Tests for linear-fractional programming (Charnes–Cooper)."""

import pytest

from repro.exceptions import InfeasibleError, SolverError
from repro.solver import FractionalProgram


class TestFractionalProgram:
    def test_simple_ratio(self):
        """max (x + 2y) / (x + y + 1) over the unit box: optimum at x=0, y=1."""
        program = FractionalProgram()
        x = program.add_variable("x")
        y = program.add_variable("y")
        program.set_ratio_objective(x * 1.0 + y * 2.0, x * 1.0 + y * 1.0 + 1.0)
        solution = program.solve()
        assert solution.objective_value == pytest.approx(1.0, abs=1e-5)
        assert solution.value_of(y) == pytest.approx(1.0, abs=1e-5)
        assert solution.value_of(x) == pytest.approx(0.0, abs=1e-5)

    def test_constant_denominator_reduces_to_lp(self):
        """max (3x) / 2 over x in [0, 1] is 1.5 at x = 1."""
        program = FractionalProgram()
        x = program.add_variable("x")
        program.set_ratio_objective(x * 3.0, x * 0.0 + 2.0)
        solution = program.solve()
        assert solution.objective_value == pytest.approx(1.5, abs=1e-6)
        assert solution.value_of(x) == pytest.approx(1.0, abs=1e-6)

    def test_constraints_respected(self):
        """max x / (0.5x + 1) with x <= 0.4."""
        program = FractionalProgram()
        x = program.add_variable("x")
        program.add_less_equal(x * 1.0, 0.4)
        program.set_ratio_objective(x * 1.0, x * 0.5 + 1.0)
        solution = program.solve()
        assert solution.value_of(x) == pytest.approx(0.4, abs=1e-5)
        assert solution.objective_value == pytest.approx(0.4 / 1.2, abs=1e-5)

    def test_greater_equal_constraint(self):
        """Throughput-per-cost shape: prefer the cheap variable but keep a floor on the fast one."""
        program = FractionalProgram()
        fast = program.add_variable("fast")
        cheap = program.add_variable("cheap")
        program.add_greater_equal(fast * 4.0 + cheap * 1.0, 1.0)  # minimum throughput
        program.set_ratio_objective(fast * 4.0 + cheap * 1.0, fast * 3.0 + cheap * 0.5 + 1e-6)
        solution = program.solve()
        # Cost-normalized throughput of cheap (2.0/unit) beats fast (1.33/unit).
        assert solution.value_of(cheap) > solution.value_of(fast)

    def test_equality_constraint(self):
        program = FractionalProgram()
        x = program.add_variable("x")
        y = program.add_variable("y")
        program.add_equal(x * 1.0 + y * 1.0, 1.0)
        program.set_ratio_objective(x * 2.0 + y * 1.0, x * 1.0 + y * 1.0)
        solution = program.solve()
        assert solution.value_of(x) + solution.value_of(y) == pytest.approx(1.0, abs=1e-6)
        assert solution.objective_value == pytest.approx(2.0, abs=1e-4)

    def test_missing_objective_raises(self):
        program = FractionalProgram()
        program.add_variable("x")
        with pytest.raises(SolverError):
            program.solve()

    def test_no_variables_raises(self):
        program = FractionalProgram()
        program.set_ratio_objective({}, {})
        with pytest.raises(SolverError):
            program.solve()

    def test_infinite_bounds_rejected(self):
        program = FractionalProgram()
        with pytest.raises(SolverError):
            program.add_variable("x", lower=0.0, upper=float("inf"))

    def test_infeasible_constraints(self):
        program = FractionalProgram()
        x = program.add_variable("x")
        program.add_greater_equal(x * 1.0, 2.0)  # impossible with x <= 1
        program.set_ratio_objective(x * 1.0, x * 1.0 + 1.0)
        with pytest.raises((InfeasibleError, SolverError)):
            program.solve()

    def test_solution_scale_is_positive(self):
        program = FractionalProgram()
        x = program.add_variable("x")
        program.set_ratio_objective(x * 1.0 + 1.0, x * 1.0 + 2.0)
        solution = program.solve()
        assert solution.scale > 0
