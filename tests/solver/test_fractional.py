"""Tests for linear-fractional programming (Charnes–Cooper)."""

import pytest

from repro.exceptions import InfeasibleError, SolverError
from repro.solver import FractionalProgram


class TestFractionalProgram:
    def test_simple_ratio(self):
        """max (x + 2y) / (x + y + 1) over the unit box: optimum at x=0, y=1."""
        program = FractionalProgram()
        x = program.add_variable("x")
        y = program.add_variable("y")
        program.set_ratio_objective(x * 1.0 + y * 2.0, x * 1.0 + y * 1.0 + 1.0)
        solution = program.solve()
        assert solution.objective_value == pytest.approx(1.0, abs=1e-5)
        assert solution.value_of(y) == pytest.approx(1.0, abs=1e-5)
        assert solution.value_of(x) == pytest.approx(0.0, abs=1e-5)

    def test_constant_denominator_reduces_to_lp(self):
        """max (3x) / 2 over x in [0, 1] is 1.5 at x = 1."""
        program = FractionalProgram()
        x = program.add_variable("x")
        program.set_ratio_objective(x * 3.0, x * 0.0 + 2.0)
        solution = program.solve()
        assert solution.objective_value == pytest.approx(1.5, abs=1e-6)
        assert solution.value_of(x) == pytest.approx(1.0, abs=1e-6)

    def test_constraints_respected(self):
        """max x / (0.5x + 1) with x <= 0.4."""
        program = FractionalProgram()
        x = program.add_variable("x")
        program.add_less_equal(x * 1.0, 0.4)
        program.set_ratio_objective(x * 1.0, x * 0.5 + 1.0)
        solution = program.solve()
        assert solution.value_of(x) == pytest.approx(0.4, abs=1e-5)
        assert solution.objective_value == pytest.approx(0.4 / 1.2, abs=1e-5)

    def test_greater_equal_constraint(self):
        """Throughput-per-cost shape: prefer the cheap variable but keep a floor on the fast one."""
        program = FractionalProgram()
        fast = program.add_variable("fast")
        cheap = program.add_variable("cheap")
        program.add_greater_equal(fast * 4.0 + cheap * 1.0, 1.0)  # minimum throughput
        program.set_ratio_objective(fast * 4.0 + cheap * 1.0, fast * 3.0 + cheap * 0.5 + 1e-6)
        solution = program.solve()
        # Cost-normalized throughput of cheap (2.0/unit) beats fast (1.33/unit).
        assert solution.value_of(cheap) > solution.value_of(fast)

    def test_equality_constraint(self):
        program = FractionalProgram()
        x = program.add_variable("x")
        y = program.add_variable("y")
        program.add_equal(x * 1.0 + y * 1.0, 1.0)
        program.set_ratio_objective(x * 2.0 + y * 1.0, x * 1.0 + y * 1.0)
        solution = program.solve()
        assert solution.value_of(x) + solution.value_of(y) == pytest.approx(1.0, abs=1e-6)
        assert solution.objective_value == pytest.approx(2.0, abs=1e-4)

    def test_missing_objective_raises(self):
        program = FractionalProgram()
        program.add_variable("x")
        with pytest.raises(SolverError):
            program.solve()

    def test_no_variables_raises(self):
        program = FractionalProgram()
        program.set_ratio_objective({}, {})
        with pytest.raises(SolverError):
            program.solve()

    def test_infinite_bounds_rejected(self):
        program = FractionalProgram()
        with pytest.raises(SolverError):
            program.add_variable("x", lower=0.0, upper=float("inf"))

    def test_infeasible_constraints(self):
        program = FractionalProgram()
        x = program.add_variable("x")
        program.add_greater_equal(x * 1.0, 2.0)  # impossible with x <= 1
        program.set_ratio_objective(x * 1.0, x * 1.0 + 1.0)
        with pytest.raises((InfeasibleError, SolverError)):
            program.solve()

    def test_solution_scale_is_positive(self):
        program = FractionalProgram()
        x = program.add_variable("x")
        program.set_ratio_objective(x * 1.0 + 1.0, x * 1.0 + 2.0)
        solution = program.solve()
        assert solution.scale > 0


class TestPersistentCharnesCooper:
    """The reduced LP survives across solves and tracks every mutation."""

    def test_cc_program_built_lazily_and_kept(self):
        program = FractionalProgram()
        x = program.add_variable("x")
        program.set_ratio_objective(x * 1.0, x * 1.0 + 1.0)
        assert program.charnes_cooper_program is None
        program.solve()
        cc = program.charnes_cooper_program
        assert cc is not None
        program.solve()
        assert program.charnes_cooper_program is cc

    def test_constraint_add_and_remove_mirrored(self):
        program = FractionalProgram()
        x = program.add_variable("x")
        program.set_ratio_objective(x * 1.0, x * 0.5 + 1.0)
        first = program.solve()
        assert first.value_of(x) == pytest.approx(1.0, abs=1e-6)
        handle = program.add_less_equal(x * 1.0, 0.4)
        capped = program.solve()
        assert capped.value_of(x) == pytest.approx(0.4, abs=1e-6)
        program.remove_constraint(handle)
        released = program.solve()
        assert released.value_of(x) == pytest.approx(1.0, abs=1e-6)

    def test_rhs_edit_mirrored(self):
        program = FractionalProgram()
        x = program.add_variable("x")
        handle = program.add_less_equal(x * 1.0, 0.4)
        program.set_ratio_objective(x * 1.0, x * 0.0 + 1.0)
        assert program.solve().value_of(x) == pytest.approx(0.4, abs=1e-6)
        program.set_constraint_bounds(handle, upper=0.7)
        assert program.solve().value_of(x) == pytest.approx(0.7, abs=1e-6)

    def test_bulk_rhs_edit_mirrored(self):
        """set_constraint_bounds_from_arrays sweeps many rows through the live CC LP."""
        import numpy as np

        program = FractionalProgram()
        x = program.add_variable("x")
        y = program.add_variable("y")
        x_cap = program.add_less_equal(x * 1.0, 0.4)
        y_floor = program.add_greater_equal(y * 1.0, 0.1)
        program.set_ratio_objective(x * 1.0 + y * -1.0, x * 0.0 + 1.0)
        solution = program.solve()
        assert solution.value_of(x) == pytest.approx(0.4, abs=1e-6)
        assert solution.value_of(y) == pytest.approx(0.1, abs=1e-6)
        # One bulk sweep: raise the <= cap, raise the >= floor (sense-matched
        # sides), broadcasting against the handle array like the LP twin.
        program.set_constraint_bounds_from_arrays([x_cap], upper=np.array([0.8]))
        program.set_constraint_bounds_from_arrays([y_floor], lower=0.3)
        solution = program.solve()
        assert solution.value_of(x) == pytest.approx(0.8, abs=1e-6)
        assert solution.value_of(y) == pytest.approx(0.3, abs=1e-6)
        # Sense mismatches surface the scalar API's errors unchanged.
        with pytest.raises(SolverError):
            program.set_constraint_bounds_from_arrays([x_cap], lower=0.1)

    def test_term_edits_mirrored(self):
        program = FractionalProgram()
        x = program.add_variable("x")
        y = program.add_variable("y")
        handle = program.add_less_equal(x * 1.0, 0.5)
        program.set_ratio_objective(x * 1.0 + y * 1.0, x * 0.0 + 1.0)
        solution = program.solve()
        assert solution.value_of(x) == pytest.approx(0.5, abs=1e-6)
        assert solution.value_of(y) == pytest.approx(1.0, abs=1e-6)
        program.add_terms_to_constraint(handle, {y.index: 1.0})  # now x + y <= 0.5
        constrained = program.solve()
        assert constrained.value_of(x) + constrained.value_of(y) == pytest.approx(0.5, abs=1e-6)
        program.remove_terms_from_constraint(handle, [x.index])  # back to y-only cap
        relaxed = program.solve()
        assert relaxed.value_of(x) == pytest.approx(1.0, abs=1e-6)
        assert relaxed.value_of(y) == pytest.approx(0.5, abs=1e-6)

    def test_variable_bounds_and_recycling_mirrored(self):
        program = FractionalProgram()
        x = program.add_variable("x")
        y = program.add_variable("y")
        program.set_ratio_objective(x * 1.0 + y * 1.0, x * 0.0 + 1.0)
        assert program.solve().objective_value == pytest.approx(2.0, abs=1e-5)
        program.set_variable_bounds(y, 0.0, 0.25)
        assert program.solve().objective_value == pytest.approx(1.25, abs=1e-5)
        program.release_variable(y)
        program.set_ratio_objective(x * 1.0, x * 0.0 + 1.0)
        assert program.solve().objective_value == pytest.approx(1.0, abs=1e-5)
        recycled = program.add_variable("z", lower=0.0, upper=0.5)
        assert recycled.index == y.index
        program.set_ratio_objective(x * 1.0 + recycled * 1.0, x * 0.0 + 1.0)
        assert program.solve().objective_value == pytest.approx(1.5, abs=1e-5)

    def test_tag_scope_clear_mirrored(self):
        program = FractionalProgram()
        x = program.add_variable("x")
        program.set_ratio_objective(x * 1.0, x * 0.0 + 1.0)
        program.solve()
        cc = program.charnes_cooper_program
        rows_before = cc.num_constraints()
        program.begin_tag("objective")
        program.add_less_equal(x * 1.0, 0.3)
        program.end_tag()
        assert program.solve().value_of(x) == pytest.approx(0.3, abs=1e-6)
        program.clear_tag("objective")
        assert program.solve().value_of(x) == pytest.approx(1.0, abs=1e-6)
        # The mirror sheds the removed rows instead of accreting garbage
        # (the denominator row is added by the first solve after build).
        assert cc.num_constraints() <= rows_before + 1

    def test_matches_fresh_rebuild_after_churn(self):
        """An edited program and a from-scratch rebuild agree on the optimum."""
        program = FractionalProgram()
        xs = program.add_variables(4, name_prefix="x")
        cap = program.add_less_equal({v.index: 1.0 for v in xs}, 2.0)
        program.set_ratio_objective(
            sum((v * float(i + 1) for i, v in enumerate(xs)), xs[0] * 0.0),
            sum((v * 1.0 for v in xs), xs[0] * 0.0) + 1.0,
        )
        program.solve()
        # Churn: tighten the cap, drop a variable, re-solve.
        program.set_constraint_bounds(cap, upper=1.5)
        program.remove_terms_from_constraint(cap, [xs[0].index])
        program.fix_variable(xs[0], 0.0)
        edited = program.solve()

        fresh = FractionalProgram()
        ys = fresh.add_variables(4, name_prefix="x")
        fresh.fix_variable(ys[0], 0.0)
        fresh.add_less_equal({v.index: 1.0 for v in ys[1:]}, 1.5)
        fresh.set_ratio_objective(
            sum((v * float(i + 1) for i, v in enumerate(ys)), ys[0] * 0.0),
            sum((v * 1.0 for v in ys), ys[0] * 0.0) + 1.0,
        )
        scratch = fresh.solve()
        assert edited.objective_value == pytest.approx(scratch.objective_value, rel=1e-6)
