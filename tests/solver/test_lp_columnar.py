"""Unit tests for the columnar (ndarray) ingestion API of the solver layer."""

import math

import numpy as np
import pytest

from repro.exceptions import SolverError
from repro.solver.fractional import FractionalProgram
from repro.solver.lp import LinearExpression, LinearProgram


def _assembled_dense(program):
    matrix, lower, upper = program._assembled()
    return matrix.toarray(), lower, upper


class TestBulkVariables:
    def test_bulk_allocation_matches_scalar_path(self):
        bulk = LinearProgram()
        scalar = LinearProgram()
        upper = np.array([1.0, 0.0, 2.0, math.inf])
        indices = bulk.add_variables_from_arrays(4, lower=0.0, upper=upper)
        for position in range(4):
            scalar.add_variable(lower=0.0, upper=None if math.isinf(upper[position]) else upper[position])
        assert indices.tolist() == [0, 1, 2, 3]
        assert np.array_equal(np.asarray(bulk._lower), np.asarray(scalar._lower))
        assert np.array_equal(np.asarray(bulk._upper), np.asarray(scalar._upper))

    def test_bulk_allocation_recycles_lifo_like_scalar_path(self):
        bulk = LinearProgram()
        scalar = LinearProgram()
        for program in (bulk, scalar):
            variables = [program.add_variable(upper=1.0) for _ in range(5)]
            for variable in variables[1:4]:
                program.release_variable(variable)
        bulk_indices = bulk.add_variables_from_arrays(4, lower=0.0, upper=1.0)
        scalar_indices = [scalar.add_variable(upper=1.0).index for _ in range(4)]
        assert bulk_indices.tolist() == scalar_indices

    def test_bulk_bound_updates(self):
        program = LinearProgram()
        indices = program.add_variables_from_arrays(3, lower=0.0, upper=1.0)
        program.set_variable_bounds_from_arrays(indices, 0.0, np.array([0.5, 0.0, 1.0]))
        assert program._upper.tolist() == [0.5, 0.0, 1.0]


class TestBulkConstraints:
    def test_matches_per_term_construction(self):
        bulk = LinearProgram()
        dict_path = LinearProgram()
        for program in (bulk, dict_path):
            program.add_variables_from_arrays(3, lower=0.0, upper=1.0)
        bulk.add_constraints_from_arrays(
            rows=np.array([0, 0, 1, 1, 1]),
            cols=np.array([0, 1, 0, 1, 2]),
            coeffs=np.array([1.0, 2.0, 3.0, 0.0, 5.0]),
            lower=-math.inf,
            upper=np.array([4.0, 6.0]),
        )
        dict_path.add_less_equal({0: 1.0, 1: 2.0}, 4.0)
        dict_path.add_less_equal({0: 3.0, 2: 5.0}, 6.0)  # zero coeff dropped
        b_m, b_l, b_u = _assembled_dense(bulk)
        d_m, d_l, d_u = _assembled_dense(dict_path)
        assert np.array_equal(b_m, d_m)
        assert np.array_equal(b_l, d_l)
        assert np.array_equal(b_u, d_u)

    def test_rejects_unsorted_rows(self):
        program = LinearProgram()
        program.add_variables_from_arrays(2, lower=0.0, upper=1.0)
        with pytest.raises(SolverError):
            program.add_constraints_from_arrays(
                np.array([1, 0]), np.array([0, 1]), np.array([1.0, 1.0]), -math.inf, np.ones(2)
            )

    def test_solves_identically(self):
        bulk = LinearProgram()
        variables = bulk.add_variables_from_arrays(2, lower=0.0, upper=1.0)
        bulk.add_constraints_from_arrays(
            np.array([0, 0]), variables, np.array([1.0, 1.0]), -math.inf, np.array([1.0])
        )
        bulk.set_objective_from_arrays(variables, np.array([1.0, 2.0]), maximize=True)
        solution = bulk.solve()
        assert solution.objective_value == pytest.approx(2.0)
        assert solution.values[1] == pytest.approx(1.0)

    def test_term_edits_on_array_backed_rows(self):
        program = LinearProgram()
        v = program.add_variables_from_arrays(3, lower=0.0, upper=1.0)
        handle = int(
            program.add_constraints_from_arrays(
                np.array([0, 0]), v[:2], np.array([1.0, 1.0]), -math.inf, np.array([1.5])
            )[0]
        )
        # Appending a disjoint term extends the fragment without a dict.
        program.add_terms_to_constraint_from_arrays(handle, v[2:], np.array([1.0]))
        assert program._constraints[handle]._coefficients is None
        # Overlapping append falls back to (correct) dict accumulation.
        program.add_terms_to_constraint_from_arrays(handle, v[:1], np.array([0.5]))
        assert program._constraints[handle].coefficients[int(v[0])] == pytest.approx(1.5)
        program.remove_terms_from_constraint(handle, [int(v[1])])
        assert int(v[1]) not in program._constraints[handle].coefficients
        program.set_constraint_coefficients_from_arrays(
            handle, v[:2], np.array([2.0, 3.0])
        )
        matrix, _, _ = program._assembled()
        assert matrix.toarray()[0].tolist() == [2.0, 3.0, 0.0]

    def test_objective_from_arrays_accumulates_duplicates(self):
        program = LinearProgram()
        v = program.add_variables_from_arrays(2, lower=0.0, upper=1.0)
        program.set_objective_from_arrays(
            np.array([v[0], v[0], v[1]]), np.array([1.0, 2.0, 4.0]), maximize=True
        )
        assert program._objective_dense().tolist() == [3.0, 4.0]


class TestLinearExpressionFromArrays:
    def test_preserves_order_and_sums_duplicates(self):
        expression = LinearExpression.from_arrays(
            np.array([3, 1, 3]), np.array([1.0, 2.0, 0.5])
        )
        assert list(expression.coefficients.items()) == [(3, 1.5), (1, 2.0)]


class TestFractionalColumnar:
    def test_bulk_constraints_and_variables_solve(self):
        program = FractionalProgram()
        v = program.add_variables_from_arrays(2, lower=0.0, upper=1.0)
        program.add_constraints_from_arrays(
            np.array([0, 0]), v, np.array([1.0, 1.0]), -math.inf, np.array([1.0])
        )
        program.set_ratio_objective({int(v[0]): 2.0, int(v[1]): 1.0}, {int(v[0]): 1.0, int(v[1]): 1.0})
        reference = FractionalProgram()
        xs = reference.add_variables(2, lower=0.0, upper=1.0)
        reference.add_less_equal({0: 1.0, 1: 1.0}, 1.0)
        reference.set_ratio_objective({0: 2.0, 1: 1.0}, {0: 1.0, 1: 1.0})
        a = program.solve()
        b = reference.solve()
        assert a.objective_value == pytest.approx(b.objective_value)
        assert np.allclose(a.values, b.values)

    def test_bulk_constraints_reject_two_sided_rows(self):
        program = FractionalProgram()
        program.add_variables_from_arrays(1, lower=0.0, upper=1.0)
        with pytest.raises(SolverError):
            program.add_constraints_from_arrays(
                np.array([0]), np.array([0]), np.array([1.0]), np.array([0.2]), np.array([0.8])
            )

    def test_bulk_constraints_reject_out_of_range_rows(self):
        """Both program types share the ordinal-range check (no silent drops)."""
        for program in (FractionalProgram(), LinearProgram()):
            program.add_variables_from_arrays(1, lower=0.0, upper=1.0)
            with pytest.raises(SolverError):
                program.add_constraints_from_arrays(
                    np.array([0, 1, 2]),
                    np.array([0, 0, 0]),
                    np.array([1.0, 1.0, 1.0]),
                    -math.inf,
                    np.array([1.0, 1.0]),  # two bounds, three row ordinals
                )

    def test_bulk_constraint_senses(self):
        program = FractionalProgram()
        v = program.add_variables_from_arrays(1, lower=0.0, upper=1.0)
        handles = program.add_constraints_from_arrays(
            np.array([0, 1, 2]),
            np.array([0, 0, 0]),
            np.array([1.0, 1.0, 1.0]),
            np.array([-math.inf, 0.25, 0.5]),
            np.array([0.75, math.inf, 0.5]),
        )
        senses = [program._constraints[int(h)].sense for h in handles]
        assert senses == ["<=", ">=", "=="]

    def test_mirrors_into_live_charnes_cooper(self):
        program = FractionalProgram()
        v = program.add_variables_from_arrays(2, lower=0.0, upper=1.0)
        program.set_ratio_objective({int(v[0]): 1.0}, {int(v[0]): 1.0, int(v[1]): 1.0})
        program.solve()  # builds the CC mirror
        handles = program.add_constraints_from_arrays(
            np.array([0]), v[:1], np.array([1.0]), -math.inf, np.array([0.5])
        )
        assert int(handles[0]) in program._cc_rows
        solution = program.solve()
        assert solution.values[0] <= 0.5 + 1e-9
