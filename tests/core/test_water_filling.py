"""Tests for the water-filling machinery (Section 4.3)."""

import numpy as np
import pytest

from repro.cluster import ClusterSpec, default_registry
from repro.core import PolicyProblem, ThroughputMatrix, WaterFillingAllocator
from repro.core.effective_throughput import effective_throughput
from repro.exceptions import ConfigurationError
from repro.workloads import Job


def _identical_jobs_problem(num_jobs=4, num_gpus=4):
    """The paper's worked example: 4 identical jobs on 4 identical GPUs."""
    registry = default_registry().subset(["v100"])
    matrix = ThroughputMatrix(
        registry, {(i,): np.array([[1.0]]) for i in range(num_jobs)}
    )
    spec = ClusterSpec.from_counts({"v100": num_gpus}, registry=registry)
    jobs = {i: Job(job_id=i, job_type="x", total_steps=1000.0) for i in range(num_jobs)}
    return PolicyProblem(jobs=jobs, throughputs=matrix, cluster_spec=spec), matrix


class TestWaterFilling:
    def test_paper_weighted_example(self):
        """Job 1 has weight 3, jobs 2-4 weight 1; 4 GPUs.

        First iteration: job 1 reaches throughput 1.0, the others 0.33; job 1
        bottlenecks; the remaining jobs are then raised to full-GPU
        allocations (Section 4.3's worked example).
        """
        problem, matrix = _identical_jobs_problem()
        allocator = WaterFillingAllocator(problem, matrix)
        result = allocator.run(initial_weights={0: 3.0, 1: 1.0, 2: 1.0, 3: 1.0})
        throughputs = [
            effective_throughput(matrix, result.allocation, job_id) for job_id in range(4)
        ]
        # Every job ends up with a full GPU: water filling removes the
        # leftover slack the one-shot LP would leave on jobs 2-4.
        for value in throughputs:
            assert value == pytest.approx(1.0, abs=0.05)

    def test_equal_weights_share_equally_under_contention(self):
        problem, matrix = _identical_jobs_problem(num_jobs=4, num_gpus=2)
        allocator = WaterFillingAllocator(problem, matrix)
        result = allocator.run(initial_weights={i: 1.0 for i in range(4)})
        throughputs = [
            effective_throughput(matrix, result.allocation, job_id) for job_id in range(4)
        ]
        for value in throughputs:
            assert value == pytest.approx(0.5, abs=0.05)

    def test_zero_weight_jobs_do_not_block(self):
        problem, matrix = _identical_jobs_problem(num_jobs=3, num_gpus=3)
        allocator = WaterFillingAllocator(problem, matrix)
        result = allocator.run(initial_weights={0: 1.0, 1: 0.0, 2: 0.0})
        assert effective_throughput(matrix, result.allocation, 0) == pytest.approx(1.0, abs=0.05)

    def test_all_zero_weights_rejected(self):
        problem, matrix = _identical_jobs_problem(num_jobs=2, num_gpus=2)
        allocator = WaterFillingAllocator(problem, matrix)
        with pytest.raises(ConfigurationError):
            allocator.run(initial_weights={0: 0.0, 1: 0.0})

    def test_allocation_valid(self, mixed_problem):
        allocator = WaterFillingAllocator(mixed_problem, mixed_problem.throughputs)
        result = allocator.run(
            initial_weights={job_id: 1.0 for job_id in mixed_problem.job_ids}
        )
        result.allocation.validate(mixed_problem.cluster_spec)

    def test_pareto_efficiency_no_slack_left(self, mixed_problem):
        """Water-filling allocations are Pareto efficient (Section 4.4):
        no job's throughput can rise without using more than the cluster."""
        allocator = WaterFillingAllocator(mixed_problem, mixed_problem.throughputs)
        result = allocator.run(
            initial_weights={job_id: 1.0 for job_id in mixed_problem.job_ids}
        )
        usage = result.allocation.worker_usage()
        capacity = mixed_problem.cluster_spec.counts_vector()
        # Every accelerator type is either saturated or every job is already
        # running 100% of the time.
        for column in range(len(capacity)):
            if usage[column] < capacity[column] - 0.05:
                for job_id in mixed_problem.job_ids:
                    assert result.allocation.job_total(job_id) >= 0.95

    def test_greedy_fallback_matches_milp(self, mixed_problem):
        with_milp = WaterFillingAllocator(
            mixed_problem, mixed_problem.throughputs, use_milp_bottleneck_detection=True
        ).run(initial_weights={job_id: 1.0 for job_id in mixed_problem.job_ids})
        greedy = WaterFillingAllocator(
            mixed_problem, mixed_problem.throughputs, use_milp_bottleneck_detection=False
        ).run(initial_weights={job_id: 1.0 for job_id in mixed_problem.job_ids})
        matrix = mixed_problem.throughputs
        for job_id in mixed_problem.job_ids:
            a = effective_throughput(matrix, with_milp.allocation, job_id)
            b = effective_throughput(matrix, greedy.allocation, job_id)
            assert a == pytest.approx(b, rel=0.1)

    def test_iterations_bounded(self, mixed_problem):
        allocator = WaterFillingAllocator(mixed_problem, mixed_problem.throughputs)
        result = allocator.run(
            initial_weights={job_id: 1.0 for job_id in mixed_problem.job_ids}
        )
        assert result.iterations <= mixed_problem.num_jobs + 2

    @pytest.mark.parametrize("use_milp", [True, False])
    @pytest.mark.parametrize("weighting", ["uniform", "weighted", "with_zeros"])
    def test_persistent_matches_legacy_rebuild_baseline(
        self, mixed_problem, use_milp, weighting
    ):
        """The persistent level loop agrees with the historical rebuild-per-LP path.

        ``incremental=False`` / ``persistent=False`` keeps the pre-session
        implementation as the equivalence baseline; the two paths use
        different level-update rules (analytic ``level += w*t*`` for the jobs
        in play vs vertex readback for every job), so agreement is on the
        outcome: per-job effective throughputs to within the procedure's own
        epsilon tolerances.  The ``with_zeros`` case exercises the one regime
        where the rules differ structurally — zero-weight jobs (FIFO-entity
        hierarchies), which the legacy path ratchets and the persistent path
        leaves untouched.
        """
        from repro.core.effective_throughput import effective_throughput

        job_ids = sorted(mixed_problem.job_ids)
        if weighting == "uniform":
            weights = {job_id: 1.0 for job_id in job_ids}
        elif weighting == "weighted":
            weights = {job_id: 1.0 + (job_id % 3) for job_id in job_ids}
        else:  # one zero-weight job, like a FIFO entity's queued followers
            weights = {
                job_id: (0.0 if position == len(job_ids) - 1 else 1.0)
                for position, job_id in enumerate(job_ids)
            }
        persistent = WaterFillingAllocator(
            mixed_problem,
            mixed_problem.throughputs,
            use_milp_bottleneck_detection=use_milp,
            persistent=True,
        ).run(initial_weights=weights)
        legacy = WaterFillingAllocator(
            mixed_problem,
            mixed_problem.throughputs,
            use_milp_bottleneck_detection=use_milp,
            persistent=False,
        ).run(initial_weights=weights)
        matrix = mixed_problem.throughputs
        persistent.allocation.validate(mixed_problem.cluster_spec)
        legacy.allocation.validate(mixed_problem.cluster_spec)
        for job_id in mixed_problem.job_ids:
            if weights[job_id] <= 0:
                # Zero-weight jobs are optimized by neither path; whatever
                # they receive is incidental slack and may legitimately
                # differ, so only validity is asserted for them (above).
                continue
            a = effective_throughput(matrix, persistent.allocation, job_id)
            b = effective_throughput(matrix, legacy.allocation, job_id)
            assert a == pytest.approx(b, rel=0.05, abs=0.05)
