"""Tests for SJF, max-throughput and the cost policies."""

import numpy as np
import pytest

from repro.cluster import ClusterSpec
from repro.core import (
    MaxTotalThroughputPolicy,
    MinCostPolicy,
    MinCostWithSLOsPolicy,
    PolicyProblem,
    ShortestJobFirstPolicy,
    build_throughput_matrix,
    effective_throughput,
)
from repro.workloads import Job


def _cost_of(problem, allocation):
    registry = problem.cluster_spec.registry
    costs = registry.costs_per_hour()
    total = 0.0
    for combination in allocation.combinations:
        scale = max(problem.scale_factor(job_id) for job_id in combination)
        row = allocation.row(combination)
        total += float(np.dot(row, costs)) * scale
    return total


class TestShortestJobFirst:
    def test_shortest_job_ranked_first(self, oracle, small_cluster):
        jobs = [
            Job(job_id=0, job_type="resnet50-bs64", total_steps=1e7),
            Job(job_id=1, job_type="resnet50-bs64", total_steps=1e3),
        ]
        matrix = build_throughput_matrix(jobs, oracle)
        problem = PolicyProblem(
            jobs={j.job_id: j for j in jobs}, throughputs=matrix, cluster_spec=small_cluster
        )
        policy = ShortestJobFirstPolicy()
        ranked = policy.ranked_jobs(problem)
        assert ranked[0][0] == 1

    def test_shortest_job_gets_fast_gpu_under_contention(self, oracle, registry):
        tiny = ClusterSpec.from_counts({"v100": 1, "p100": 0, "k80": 1}, registry=registry)
        jobs = [
            Job(job_id=0, job_type="resnet50-bs64", total_steps=1e7),
            Job(job_id=1, job_type="resnet50-bs64", total_steps=1e3),
        ]
        matrix = build_throughput_matrix(jobs, oracle)
        problem = PolicyProblem(
            jobs={j.job_id: j for j in jobs}, throughputs=matrix, cluster_spec=tiny
        )
        allocation = ShortestJobFirstPolicy().compute_allocation(problem)
        assert allocation.value((1,), "v100") >= allocation.value((0,), "v100")

    def test_allocation_valid(self, mixed_problem):
        ShortestJobFirstPolicy().compute_allocation(mixed_problem).validate(
            mixed_problem.cluster_spec
        )


class TestMaxTotalThroughput:
    def test_uses_the_whole_cluster(self, mixed_problem):
        allocation = MaxTotalThroughputPolicy().compute_allocation(mixed_problem)
        usage = allocation.worker_usage()
        capacity = mixed_problem.cluster_spec.counts_vector()
        assert usage.sum() == pytest.approx(capacity.sum(), rel=0.05)

    def test_allocation_valid(self, mixed_problem):
        MaxTotalThroughputPolicy().compute_allocation(mixed_problem).validate(
            mixed_problem.cluster_spec
        )

    def test_unnormalized_variant_runs(self, mixed_problem):
        allocation = MaxTotalThroughputPolicy(normalize=False).compute_allocation(mixed_problem)
        allocation.validate(mixed_problem.cluster_spec)


class TestMinCost:
    def test_cheaper_than_max_throughput(self, mixed_problem):
        """The min-cost policy spends fewer dollars per unit of work (§7.3, Cost)."""
        throughput_allocation = MaxTotalThroughputPolicy().compute_allocation(mixed_problem)
        cost_allocation = MinCostPolicy().compute_allocation(mixed_problem)
        assert _cost_of(mixed_problem, cost_allocation) <= _cost_of(
            mixed_problem, throughput_allocation
        )

    def test_a3c_prefers_cheap_gpu(self, oracle, small_cluster):
        """A3C has the best cost-normalized throughput on the K80 (Figure 1b)."""
        jobs = [Job(job_id=0, job_type="a3c-bs4", total_steps=1e5)]
        matrix = build_throughput_matrix(jobs, oracle)
        problem = PolicyProblem(
            jobs={0: jobs[0]}, throughputs=matrix, cluster_spec=small_cluster
        )
        allocation = MinCostPolicy().compute_allocation(problem)
        assert allocation.value((0,), "k80") > allocation.value((0,), "v100")

    def test_allocation_valid(self, mixed_problem):
        MinCostPolicy().compute_allocation(mixed_problem).validate(mixed_problem.cluster_spec)


class TestMinCostWithSLOs:
    def _problem(self, oracle, cluster, slo_seconds):
        jobs = [
            Job(job_id=0, job_type="a3c-bs4", total_steps=3e5, slo_seconds=slo_seconds),
            Job(job_id=1, job_type="resnet50-bs64", total_steps=1e5),
        ]
        matrix = build_throughput_matrix(jobs, oracle)
        return PolicyProblem(
            jobs={j.job_id: j for j in jobs}, throughputs=matrix, cluster_spec=cluster
        )

    def test_tight_slo_forces_fast_gpu(self, oracle, small_cluster):
        """With a tight SLO the A3C job must be moved off the cheap K80 (§7.3)."""
        oracle_throughput = oracle.throughput("a3c-bs4", "v100")
        tight = 3e5 / oracle_throughput * 1.1  # only achievable near V100 speed
        problem = self._problem(oracle, small_cluster, slo_seconds=tight)
        allocation = MinCostWithSLOsPolicy().compute_allocation(problem)
        achieved = effective_throughput(problem.throughputs, allocation, 0)
        assert achieved >= 3e5 / tight * 0.95

    def test_loose_slo_keeps_cheap_gpu(self, oracle, small_cluster):
        loose = 3e5 / oracle.throughput("a3c-bs4", "k80") * 10.0
        problem = self._problem(oracle, small_cluster, slo_seconds=loose)
        allocation = MinCostWithSLOsPolicy().compute_allocation(problem)
        assert allocation.value((0,), "k80") >= allocation.value((0,), "v100") - 1e-6

    def test_impossible_slo_is_dropped(self, oracle, small_cluster):
        problem = self._problem(oracle, small_cluster, slo_seconds=1.0)
        allocation = MinCostWithSLOsPolicy().compute_allocation(problem)
        allocation.validate(small_cluster)

    def test_slo_constrained_cost_at_least_min_cost(self, oracle, small_cluster):
        oracle_throughput = oracle.throughput("a3c-bs4", "v100")
        tight = 3e5 / oracle_throughput * 1.1
        problem = self._problem(oracle, small_cluster, slo_seconds=tight)
        slo_cost = _cost_of(problem, MinCostWithSLOsPolicy().compute_allocation(problem))
        plain_cost = _cost_of(problem, MinCostPolicy().compute_allocation(problem))
        assert slo_cost >= plain_cost - 1e-6
