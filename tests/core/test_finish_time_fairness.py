"""Tests for the finish-time-fairness (Themis) policy."""

import math

import pytest

from repro.core import (
    FinishTimeFairnessPolicy,
    PolicyProblem,
    build_throughput_matrix,
    effective_throughput,
    finish_time_fairness_rho,
)
from repro.core.effective_throughput import isolated_reference_throughput
from repro.workloads import Job


class TestRhoMetric:
    def test_rho_one_when_matching_isolated(self):
        assert finish_time_fairness_rho(
            elapsed=100.0, remaining_steps=1000.0, achieved_throughput=2.0, isolated_throughput=2.0
        ) == pytest.approx(1.0)

    def test_rho_above_one_when_slower_than_isolated(self):
        rho = finish_time_fairness_rho(
            elapsed=0.0, remaining_steps=1000.0, achieved_throughput=1.0, isolated_throughput=2.0
        )
        assert rho == pytest.approx(2.0)

    def test_rho_below_one_when_faster_than_isolated(self):
        rho = finish_time_fairness_rho(
            elapsed=0.0, remaining_steps=1000.0, achieved_throughput=4.0, isolated_throughput=2.0
        )
        assert rho == pytest.approx(0.5)

    def test_zero_throughput_gives_infinite_rho(self):
        assert math.isinf(
            finish_time_fairness_rho(
                elapsed=0.0, remaining_steps=10.0, achieved_throughput=0.0, isolated_throughput=1.0
            )
        )

    def test_custom_isolated_elapsed(self):
        rho = finish_time_fairness_rho(
            elapsed=200.0,
            remaining_steps=0.0001,
            achieved_throughput=1.0,
            isolated_throughput=1.0,
            isolated_elapsed=100.0,
        )
        assert rho == pytest.approx(2.0, rel=0.01)


class TestPolicy:
    def test_all_jobs_no_worse_than_isolated(self, mixed_problem):
        """Sharing incentive: max rho is at most ~1 when the cluster is not overloaded."""
        problem = mixed_problem
        allocation = FinishTimeFairnessPolicy().compute_allocation(problem)
        matrix = problem.throughputs
        for job_id in problem.job_ids:
            achieved = effective_throughput(matrix, allocation, job_id)
            isolated = isolated_reference_throughput(
                matrix,
                problem.cluster_spec,
                job_id,
                num_jobs=problem.num_jobs,
                scale_factor=problem.scale_factor(job_id),
            )
            rho = finish_time_fairness_rho(
                elapsed=problem.elapsed(job_id),
                remaining_steps=problem.remaining_steps(job_id),
                achieved_throughput=achieved,
                isolated_throughput=isolated,
            )
            assert rho <= 1.05

    def test_allocation_valid(self, mixed_problem):
        allocation = FinishTimeFairnessPolicy().compute_allocation(mixed_problem)
        allocation.validate(mixed_problem.cluster_spec)

    def test_elapsed_time_shifts_priority_to_late_jobs(self, oracle, small_cluster):
        """A job far behind its isolated finish time gets more resources."""
        jobs = [
            Job(job_id=0, job_type="resnet50-bs64", total_steps=1e5),
            Job(job_id=1, job_type="resnet50-bs64", total_steps=1e5),
        ]
        matrix = build_throughput_matrix(jobs, oracle)
        problem = PolicyProblem(
            jobs={job.job_id: job for job in jobs},
            throughputs=matrix,
            cluster_spec=small_cluster,
            # Job 0 has waited a long time without progress.
            time_elapsed={0: 1e5, 1: 0.0},
            steps_remaining={0: 1e5, 1: 1e5},
        )
        allocation = FinishTimeFairnessPolicy().compute_allocation(problem)
        assert effective_throughput(matrix, allocation, 0) >= effective_throughput(
            matrix, allocation, 1
        ) * 0.95

    def test_heterogeneity_aware_beats_agnostic_on_max_rho(self, mixed_problem):
        problem = mixed_problem
        matrix = problem.throughputs

        def max_rho(allocation):
            worst = 0.0
            for job_id in problem.job_ids:
                achieved = effective_throughput(matrix, allocation, job_id)
                isolated = isolated_reference_throughput(
                    matrix, problem.cluster_spec, job_id, num_jobs=problem.num_jobs
                )
                worst = max(
                    worst,
                    finish_time_fairness_rho(
                        elapsed=0.0,
                        remaining_steps=problem.remaining_steps(job_id),
                        achieved_throughput=achieved,
                        isolated_throughput=isolated,
                    ),
                )
            return worst

        aware = FinishTimeFairnessPolicy().compute_allocation(problem)
        agnostic = FinishTimeFairnessPolicy(heterogeneity_agnostic=True).compute_allocation(problem)
        assert max_rho(aware) <= max_rho(agnostic) + 0.05
