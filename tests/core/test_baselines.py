"""Tests for the baseline schedulers (isolated, Gandiva, AlloX)."""

import numpy as np
import pytest

from repro.cluster import ClusterSpec
from repro.core import (
    AlloXPolicy,
    GandivaPolicy,
    IsolatedPolicy,
    PolicyProblem,
    build_throughput_matrix,
    effective_throughput,
)
from repro.exceptions import ConfigurationError
from repro.workloads import Job


class TestIsolatedPolicy:
    def test_equal_split_across_jobs(self, mixed_problem):
        allocation = IsolatedPolicy().compute_allocation(mixed_problem)
        totals = [allocation.job_total(job_id) for job_id in mixed_problem.job_ids]
        assert max(totals) - min(totals) <= 1e-6

    def test_allocation_valid(self, mixed_problem):
        IsolatedPolicy().compute_allocation(mixed_problem).validate(mixed_problem.cluster_spec)

    def test_time_share_proportional_to_counts(self, oracle):
        spec = ClusterSpec.from_counts({"v100": 1, "p100": 2, "k80": 1})
        jobs = [Job(job_id=0, job_type="a3c-bs4", total_steps=10.0)]
        matrix = build_throughput_matrix(jobs, oracle)
        problem = PolicyProblem(jobs={0: jobs[0]}, throughputs=matrix, cluster_spec=spec)
        allocation = IsolatedPolicy().compute_allocation(problem)
        row = allocation.job_row(0)
        assert row[1] == pytest.approx(2 * row[0], rel=1e-6)


class TestGandivaPolicy:
    def test_is_heterogeneity_agnostic(self):
        assert GandivaPolicy().heterogeneity_agnostic

    def test_negative_trials_rejected(self):
        with pytest.raises(ConfigurationError):
            GandivaPolicy(packing_trials=-1)

    def test_allocation_valid_without_pairs(self, mixed_problem):
        GandivaPolicy().compute_allocation(mixed_problem).validate(mixed_problem.cluster_spec)

    def test_packs_beneficial_pairs(self, mixed_problem_ss):
        allocation = GandivaPolicy(packing_trials=200, seed=1).compute_allocation(mixed_problem_ss)
        pair_rows = [c for c in allocation.combinations if len(c) == 2]
        packed = [c for c in pair_rows if allocation.row(c).sum() > 0]
        assert packed, "random packing should find at least one beneficial pair"
        allocation.validate(mixed_problem_ss.cluster_spec)

    def test_deterministic_for_fixed_seed(self, mixed_problem_ss):
        first = GandivaPolicy(packing_trials=100, seed=3).compute_allocation(mixed_problem_ss)
        second = GandivaPolicy(packing_trials=100, seed=3).compute_allocation(mixed_problem_ss)
        for combination in first.combinations:
            np.testing.assert_allclose(first.row(combination), second.row(combination))

    def test_no_packing_when_disabled(self, mixed_problem_ss):
        allocation = GandivaPolicy(space_sharing=False).compute_allocation(mixed_problem_ss)
        pair_fractions = [
            allocation.row(c).sum() for c in allocation.combinations if len(c) == 2
        ]
        assert all(value == 0.0 for value in pair_fractions)


class TestAlloXPolicy:
    def test_each_accelerator_type_not_oversubscribed(self, mixed_problem):
        allocation = AlloXPolicy().compute_allocation(mixed_problem)
        allocation.validate(mixed_problem.cluster_spec)

    def test_runs_at_most_one_job_per_worker(self, oracle):
        spec = ClusterSpec.from_counts({"v100": 1, "p100": 1, "k80": 1})
        jobs = [
            Job(job_id=i, job_type="resnet50-bs64", total_steps=1e5 * (i + 1))
            for i in range(5)
        ]
        matrix = build_throughput_matrix(jobs, oracle)
        problem = PolicyProblem(
            jobs={j.job_id: j for j in jobs}, throughputs=matrix, cluster_spec=spec
        )
        allocation = AlloXPolicy().compute_allocation(problem)
        usage = allocation.worker_usage()
        assert np.all(usage <= spec.counts_vector() + 1e-6)
        # Exactly three jobs (one per device) run now.
        running = [j for j in problem.job_ids if allocation.job_total(j) > 0.5]
        assert len(running) == 3

    def test_short_jobs_favoured_for_fast_devices(self, oracle):
        """AlloX minimizes average JCT, so short jobs run before long ones."""
        spec = ClusterSpec.from_counts({"v100": 1, "p100": 0, "k80": 0})
        jobs = [
            Job(job_id=0, job_type="resnet50-bs64", total_steps=1e7),
            Job(job_id=1, job_type="resnet50-bs64", total_steps=1e3),
        ]
        matrix = build_throughput_matrix(jobs, oracle)
        problem = PolicyProblem(
            jobs={j.job_id: j for j in jobs}, throughputs=matrix, cluster_spec=spec
        )
        allocation = AlloXPolicy().compute_allocation(problem)
        assert allocation.job_total(1) > allocation.job_total(0)

    def test_distributed_jobs_fall_back_to_fastest_type(self, oracle):
        spec = ClusterSpec.from_counts({"v100": 8, "p100": 4, "k80": 4})
        jobs = [
            Job(job_id=0, job_type="resnet50-bs64", total_steps=1e5, scale_factor=4),
            Job(job_id=1, job_type="a3c-bs4", total_steps=1e5),
        ]
        matrix = build_throughput_matrix(jobs, oracle)
        problem = PolicyProblem(
            jobs={j.job_id: j for j in jobs}, throughputs=matrix, cluster_spec=spec
        )
        allocation = AlloXPolicy().compute_allocation(problem)
        assert allocation.value((0,), "v100") == pytest.approx(1.0, abs=1e-6)
