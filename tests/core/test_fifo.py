"""Tests for the heterogeneity-aware FIFO policy."""

import pytest

from repro.core import FifoPolicy, PolicyProblem, build_throughput_matrix, effective_throughput
from repro.core.effective_throughput import fastest_reference_throughput
from repro.workloads import Job


def _problem(oracle, cluster, job_types, arrivals):
    jobs = [
        Job(job_id=i, job_type=job_type, total_steps=1e5, arrival_time=arrival)
        for i, (job_type, arrival) in enumerate(zip(job_types, arrivals))
    ]
    matrix = build_throughput_matrix(jobs, oracle)
    return PolicyProblem(
        jobs={job.job_id: job for job in jobs}, throughputs=matrix, cluster_spec=cluster
    )


class TestFifo:
    def test_earliest_job_gets_full_speed(self, oracle, small_cluster):
        """With plenty of capacity, the first arrivals run at their fastest rate."""
        problem = _problem(
            oracle,
            small_cluster,
            ["resnet50-bs64", "lstm-bs20", "a3c-bs4"],
            [0.0, 10.0, 20.0],
        )
        allocation = FifoPolicy().compute_allocation(problem)
        matrix = problem.throughputs
        first = effective_throughput(matrix, allocation, 0)
        assert first == pytest.approx(fastest_reference_throughput(matrix, 0), rel=0.05)

    def test_under_contention_earlier_jobs_preferred(self, oracle, registry):
        from repro.cluster import ClusterSpec

        tiny = ClusterSpec.from_counts({"v100": 1, "p100": 0, "k80": 0}, registry=registry)
        problem = _problem(
            oracle,
            tiny,
            ["resnet50-bs64", "resnet50-bs64", "resnet50-bs64"],
            [0.0, 10.0, 20.0],
        )
        allocation = FifoPolicy().compute_allocation(problem)
        matrix = problem.throughputs
        throughputs = [effective_throughput(matrix, allocation, i) for i in range(3)]
        assert throughputs[0] >= throughputs[1] >= throughputs[2]
        assert throughputs[0] > 0

    def test_arrival_order_breaks_ties_not_job_id(self, oracle, registry):
        from repro.cluster import ClusterSpec

        tiny = ClusterSpec.from_counts({"v100": 1, "p100": 0, "k80": 0}, registry=registry)
        # Job 1 arrived before job 0.
        jobs = [
            Job(job_id=0, job_type="resnet50-bs64", total_steps=1e5, arrival_time=50.0),
            Job(job_id=1, job_type="resnet50-bs64", total_steps=1e5, arrival_time=0.0),
        ]
        matrix = build_throughput_matrix(jobs, oracle)
        problem = PolicyProblem(
            jobs={job.job_id: job for job in jobs}, throughputs=matrix, cluster_spec=tiny
        )
        allocation = FifoPolicy().compute_allocation(problem)
        assert effective_throughput(matrix, allocation, 1) >= effective_throughput(
            matrix, allocation, 0
        )

    def test_allocation_valid(self, oracle, small_cluster):
        problem = _problem(
            oracle,
            small_cluster,
            ["resnet50-bs64", "lstm-bs20", "a3c-bs4", "transformer-bs64"],
            [0.0, 1.0, 2.0, 3.0],
        )
        allocation = FifoPolicy().compute_allocation(problem)
        allocation.validate(small_cluster)

    def test_jobs_placed_on_fastest_available_type(self, oracle, small_cluster):
        """In a heterogeneous regime FIFO places jobs on the fastest available type."""
        problem = _problem(oracle, small_cluster, ["resnet50-bs64"], [0.0])
        allocation = FifoPolicy().compute_allocation(problem)
        assert allocation.value((0,), "v100") == pytest.approx(1.0, abs=1e-3)

    def test_agnostic_variant_runs(self, oracle, small_cluster):
        problem = _problem(oracle, small_cluster, ["resnet50-bs64", "a3c-bs4"], [0.0, 1.0])
        allocation = FifoPolicy(heterogeneity_agnostic=True).compute_allocation(problem)
        allocation.validate(small_cluster)
