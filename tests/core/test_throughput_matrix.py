"""Tests for throughput matrices over job combinations."""

import numpy as np
import pytest

from repro.cluster import default_registry
from repro.core import ThroughputMatrix, build_throughput_matrix
from repro.exceptions import ConfigurationError, UnknownJobError
from repro.workloads import ColocationModel, Job, ThroughputOracle

from tests.conftest import make_jobs


@pytest.fixture(scope="module")
def oracle():
    return ThroughputOracle()


class TestConstruction:
    def test_singleton_rows(self, registry):
        matrix = ThroughputMatrix(
            registry, {(0,): np.array([[1.0, 2.0, 3.0]]), (1,): np.array([[4.0, 5.0, 6.0]])}
        )
        assert matrix.job_ids == (0, 1)
        assert matrix.num_rows() == 2
        assert not matrix.has_space_sharing()

    def test_pair_rows_require_singletons(self, registry):
        with pytest.raises(ConfigurationError):
            ThroughputMatrix(registry, {(0, 1): np.zeros((2, 3))})

    def test_row_shape_validated(self, registry):
        with pytest.raises(ConfigurationError):
            ThroughputMatrix(registry, {(0,): np.array([[1.0, 2.0]])})

    def test_negative_throughput_rejected(self, registry):
        with pytest.raises(ConfigurationError):
            ThroughputMatrix(registry, {(0,): np.array([[1.0, -2.0, 3.0]])})

    def test_duplicate_job_in_combination_rejected(self, registry):
        # Duplicate ids are only meaningful for pairs (the same-group
        # colocation rows of type-aggregated problems); larger repeats stay
        # rejected.
        with pytest.raises(ConfigurationError):
            ThroughputMatrix(
                registry,
                {(0,): np.ones((1, 3)), (0, 0, 1): np.ones((3, 3))},
            )

    def test_duplicate_pair_row_allowed(self, registry):
        matrix = ThroughputMatrix(
            registry,
            {(0,): np.ones((1, 3)), (0, 0): np.full((2, 3), 0.5)},
        )
        assert matrix.combinations == ((0,), (0, 0))
        np.testing.assert_allclose(matrix.row((0, 0)), np.full((2, 3), 0.5))
        assert matrix.rows_containing(0) == (((0,), 0), ((0, 0), 0), ((0, 0), 1))

    def test_empty_matrix_rejected(self, registry):
        with pytest.raises(ConfigurationError):
            ThroughputMatrix(registry, {})

    def test_combination_order_normalized(self, registry):
        matrix = ThroughputMatrix(
            registry,
            {
                (0,): np.ones((1, 3)),
                (1,): np.ones((1, 3)),
                (1, 0): np.array([[1.0, 1.0, 1.0], [2.0, 2.0, 2.0]]),
            },
        )
        assert (0, 1) in matrix.combinations


class TestQueries:
    @pytest.fixture
    def matrix(self, registry):
        return ThroughputMatrix(
            registry,
            {
                (0,): np.array([[4.0, 2.0, 1.0]]),
                (1,): np.array([[3.0, 2.0, 1.0]]),
                (0, 1): np.array([[2.0, 0.0, 0.0], [1.5, 0.0, 0.0]]),
            },
        )

    def test_throughput_lookup(self, matrix):
        assert matrix.throughput((0,), 0, "v100") == 4.0
        assert matrix.throughput((0, 1), 1, "v100") == 1.5  # repro: noqa[REP005] -- lookup returns the stored constant unmodified; equality is exact by design

    def test_rows_containing(self, matrix):
        rows = matrix.rows_containing(0)
        assert ((0,), 0) in rows
        assert ((0, 1), 0) in rows

    def test_unknown_job_raises(self, matrix):
        with pytest.raises(UnknownJobError):
            matrix.rows_containing(9)
        with pytest.raises(UnknownJobError):
            matrix.throughput((0,), 9, "v100")

    def test_isolated_throughputs(self, matrix):
        np.testing.assert_allclose(matrix.isolated_throughputs(1), [3.0, 2.0, 1.0])

    def test_singles_matrix(self, matrix):
        job_ids, dense = matrix.singles_matrix()
        assert job_ids == (0, 1)
        assert dense.shape == (2, 3)

    def test_restrict_to_singletons(self, matrix):
        restricted = matrix.restrict_to_singletons()
        assert not restricted.has_space_sharing()
        assert restricted.num_rows() == 2

    def test_heterogeneity_agnostic_flattens_rows(self, matrix):
        flat = matrix.heterogeneity_agnostic()
        row = flat.isolated_throughputs(0)
        assert row[0] == row[1] == row[2] == pytest.approx(np.mean([4.0, 2.0, 1.0]))

    def test_heterogeneity_agnostic_preserves_zero_columns(self, matrix):
        flat = matrix.heterogeneity_agnostic()
        pair_row = flat.row((0, 1))
        assert pair_row[0, 1] == 0.0 and pair_row[0, 2] == 0.0
        assert pair_row[0, 0] > 0


class TestBuilder:
    def test_builds_singleton_rows_for_all_jobs(self, oracle):
        jobs = make_jobs(oracle, ["resnet50-bs64", "a3c-bs4", "lstm-bs20"])
        matrix = build_throughput_matrix(jobs, oracle)
        assert matrix.job_ids == (0, 1, 2)
        assert not matrix.has_space_sharing()

    def test_space_sharing_adds_beneficial_pairs_only(self, oracle):
        jobs = make_jobs(oracle, ["resnet50-bs128", "cyclegan-bs1", "a3c-bs4", "lstm-bs5"])
        matrix = build_throughput_matrix(jobs, oracle, space_sharing=True)
        pairs = [c for c in matrix.combinations if len(c) == 2]
        # The two heavy jobs (0, 1) do not fit together / do not benefit.
        assert (0, 1) not in pairs
        # The two light jobs colocate well.
        assert (2, 3) in pairs

    def test_multi_worker_jobs_excluded_from_pairs(self, oracle):
        jobs = make_jobs(oracle, ["a3c-bs4", "lstm-bs5"], scale_factors=[4, 1])
        matrix = build_throughput_matrix(jobs, oracle, space_sharing=True)
        assert all(len(c) == 1 for c in matrix.combinations)

    def test_scale_factor_increases_aggregate_throughput(self, oracle):
        single = make_jobs(oracle, ["resnet50-bs64"], scale_factors=[1])
        distributed = make_jobs(oracle, ["resnet50-bs64"], scale_factors=[4])
        matrix_single = build_throughput_matrix(single, oracle)
        matrix_distributed = build_throughput_matrix(distributed, oracle)
        assert (
            matrix_distributed.isolated_throughputs(0)[0]
            > matrix_single.isolated_throughputs(0)[0]
        )

    def test_duplicate_job_ids_rejected(self, oracle):
        job = Job(job_id=0, job_type="a3c-bs4", total_steps=10.0)
        with pytest.raises(ConfigurationError):
            build_throughput_matrix([job, job], oracle)

    def test_empty_jobs_rejected(self, oracle):
        with pytest.raises(ConfigurationError):
            build_throughput_matrix([], oracle)

    def test_explicit_colocation_model_used(self, oracle):
        jobs = make_jobs(oracle, ["a3c-bs4", "lstm-bs5"])
        model = ColocationModel(oracle, interference_strength=0.0)
        matrix = build_throughput_matrix(
            jobs, oracle, space_sharing=True, colocation_model=model
        )
        # With zero interference every pair is beneficial (combined = 2.0).
        assert (0, 1) in matrix.combinations
        pair = matrix.row((0, 1))
        np.testing.assert_allclose(pair[0], matrix.isolated_throughputs(0))
