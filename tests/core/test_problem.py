"""Tests for the PolicyProblem snapshot."""

import pytest

from repro.cluster import ClusterSpec
from repro.core import PolicyProblem, build_throughput_matrix
from repro.exceptions import ConfigurationError, UnknownJobError
from repro.workloads import Job, ThroughputOracle


@pytest.fixture(scope="module")
def oracle():
    return ThroughputOracle()


@pytest.fixture
def jobs():
    return [
        Job(job_id=0, job_type="resnet50-bs64", total_steps=1000.0, arrival_time=5.0),
        Job(job_id=1, job_type="a3c-bs4", total_steps=2000.0, arrival_time=1.0, scale_factor=4,
            priority_weight=2.0),
    ]


@pytest.fixture
def problem(jobs, oracle):
    matrix = build_throughput_matrix(jobs, oracle)
    return PolicyProblem(
        jobs={job.job_id: job for job in jobs},
        throughputs=matrix,
        cluster_spec=ClusterSpec.from_counts({"v100": 4, "p100": 4, "k80": 4}),
        steps_remaining={0: 400.0},
        time_elapsed={0: 60.0},
        current_time=100.0,
    )


class TestValidation:
    def test_empty_jobs_rejected(self, jobs, oracle):
        matrix = build_throughput_matrix(jobs, oracle)
        with pytest.raises(ConfigurationError):
            PolicyProblem(jobs={}, throughputs=matrix,
                          cluster_spec=ClusterSpec.from_counts({"v100": 1}))

    def test_mismatched_matrix_rejected(self, jobs, oracle):
        matrix = build_throughput_matrix(jobs[:1], oracle)
        with pytest.raises(ConfigurationError):
            PolicyProblem(
                jobs={job.job_id: job for job in jobs},
                throughputs=matrix,
                cluster_spec=ClusterSpec.from_counts({"v100": 1}),
            )

    def test_mismatched_key_rejected(self, jobs, oracle):
        matrix = build_throughput_matrix(jobs, oracle)
        with pytest.raises(ConfigurationError):
            PolicyProblem(
                jobs={99: jobs[0], 1: jobs[1]},
                throughputs=matrix,
                cluster_spec=ClusterSpec.from_counts({"v100": 1}),
            )

    @pytest.mark.parametrize("field", ["steps_remaining", "time_elapsed"])
    def test_stale_timing_keys_rejected(self, jobs, oracle, field):
        # Regression: timing maps used to accept ids of departed jobs
        # silently; they must be a subset of the problem's jobs.
        matrix = build_throughput_matrix(jobs, oracle)
        with pytest.raises(ConfigurationError, match=field):
            PolicyProblem(
                jobs={job.job_id: job for job in jobs},
                throughputs=matrix,
                cluster_spec=ClusterSpec.from_counts({"v100": 1}),
                **{field: {0: 10.0, 42: 5.0}},
            )

    def test_stale_group_counts_rejected(self, jobs, oracle):
        matrix = build_throughput_matrix(jobs, oracle)
        with pytest.raises(ConfigurationError, match="group_counts"):
            PolicyProblem(
                jobs={job.job_id: job for job in jobs},
                throughputs=matrix,
                cluster_spec=ClusterSpec.from_counts({"v100": 1}),
                group_counts={7: 2},
            )
        with pytest.raises(ConfigurationError, match="positive integer"):
            PolicyProblem(
                jobs={job.job_id: job for job in jobs},
                throughputs=matrix,
                cluster_spec=ClusterSpec.from_counts({"v100": 1}),
                group_counts={0: 0},
            )


class TestAccessors:
    def test_job_ids_sorted(self, problem):
        assert problem.job_ids == (0, 1)
        assert problem.num_jobs == 2

    def test_job_lookup(self, problem):
        assert problem.job(1).job_type == "a3c-bs4"
        with pytest.raises(UnknownJobError):
            problem.job(7)

    def test_scale_factors_and_weights(self, problem):
        assert problem.scale_factor(1) == 4
        assert problem.scale_factors() == {0: 1, 1: 4}
        assert problem.priority_weight(1) == 2.0

    def test_remaining_steps_defaults_to_total(self, problem):
        assert problem.remaining_steps(0) == 400.0
        assert problem.remaining_steps(1) == 2000.0

    def test_elapsed_defaults_to_zero(self, problem):
        assert problem.elapsed(0) == 60.0
        assert problem.elapsed(1) == 0.0

    def test_arrival_order(self, problem):
        assert problem.arrival_order() == (1, 0)
