"""Vectorized-vs-dict LP assembly equivalence.

The columnar assembly path must be a drop-in replacement for the historical
per-term dict path: same constraint matrices (up to row order, coefficients
equal to 1e-12) and *bit-identical* allocations for every space-sharing
registry policy under job churn, and identical end-to-end schedules in all
three execution modes.
"""

import numpy as np
import pytest

from repro.cluster import ClusterSpec
from repro.core import make_policy
from repro.core.allocation_engine import AllocationEngine
from repro.core.policy import AllocationVariables, lp_assembly, lp_assembly_mode
from repro.core.problem import PolicyProblem
from repro.core.throughput_matrix import build_throughput_matrix
from repro.exceptions import ConfigurationError
from repro.simulator import Simulator, SimulatorConfig
from repro.solver.lp import LinearProgram
from repro.workloads import ColocationModel, ThroughputOracle, TraceGenerator

#: Every LP/fractional-program policy from the registry, with space sharing.
_SS_POLICY_SPECS = [
    "max_min_fairness+ss",
    "max_min_fairness+ss@agnostic",
    "fifo+ss",
    "makespan+ss",
    "finish_time_fairness+ss",
    "shortest_job_first+ss",
    "max_total_throughput+ss",
    "min_cost+ss",
    "min_cost_slo+ss",
]


@pytest.fixture(scope="module")
def oracle():
    return ThroughputOracle()


def _churn_problems(oracle, num_jobs=16, num_events=6, seed=7):
    """A problem sequence plus per-step deltas from the engine under churn."""
    trace = TraceGenerator(oracle).generate_static(num_jobs=num_jobs + num_events, seed=seed)
    jobs = list(trace.jobs)
    spec = ClusterSpec.from_counts({"v100": 2, "p100": 2, "k80": 2})
    engine = AllocationEngine(
        oracle, space_sharing=True, colocation_model=ColocationModel(oracle)
    )
    engine.add_jobs(jobs[:num_jobs])
    active = {job.job_id: job for job in jobs[:num_jobs]}
    steps = []
    for event in range(num_events + 1):
        if event > 0:
            engine.remove_job(jobs[event - 1].job_id)
            del active[jobs[event - 1].job_id]
            newcomer = jobs[num_jobs + event - 1]
            engine.add_job(newcomer)
            active[newcomer.job_id] = newcomer
        problem = PolicyProblem(
            jobs=dict(active),
            throughputs=engine.matrix(),
            cluster_spec=spec,
            steps_remaining={j: job.total_steps * 0.8 for j, job in active.items()},
            time_elapsed={j: 120.0 * (i + 1) for i, j in enumerate(sorted(active))},
        )
        steps.append((problem, engine.drain_deltas()))
    return steps


def _session_allocations(policy_spec, steps, mode):
    policy = make_policy(policy_spec)
    session = None
    allocations = []
    with lp_assembly(mode):
        for problem, deltas in steps:
            if session is None:
                session = policy.session(problem)
            else:
                session.apply(deltas)
            allocations.append(session.solve(problem))
    return allocations


class TestAssemblyModeToggle:
    def test_mode_round_trips(self):
        ambient = lp_assembly_mode()
        with lp_assembly("dict"):
            assert lp_assembly_mode() == "dict"
            with lp_assembly("vectorized"):
                assert lp_assembly_mode() == "vectorized"
            assert lp_assembly_mode() == "dict"
        assert lp_assembly_mode() == ambient

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            with lp_assembly("columnar"):
                pass


class TestConstraintMatrixEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_validity_constraints_identical(self, oracle, seed):
        """Both paths emit the same variables, bounds and constraint matrix."""
        trace = TraceGenerator(oracle).generate_static(num_jobs=12, seed=seed)
        jobs = list(trace.jobs)
        matrix = build_throughput_matrix(jobs, oracle, space_sharing=True)
        spec = ClusterSpec.from_counts({"v100": 2, "p100": 2, "k80": 2})
        problem = PolicyProblem(
            jobs={job.job_id: job for job in jobs}, throughputs=matrix, cluster_spec=spec
        )
        programs = {}
        for mode in ("dict", "vectorized"):
            program = LinearProgram()
            with lp_assembly(mode):
                AllocationVariables(problem, matrix, program)
            programs[mode] = program
        d, v = programs["dict"], programs["vectorized"]
        assert d.num_variables() == v.num_variables()
        assert np.array_equal(np.asarray(d._lower), np.asarray(v._lower))
        assert np.array_equal(np.asarray(d._upper), np.asarray(v._upper))
        d_matrix, d_lower, d_upper = d._assembled()
        v_matrix, v_lower, v_upper = v._assembled()
        d_dense, v_dense = d_matrix.toarray(), v_matrix.toarray()
        # Align row order before comparing (handles are path-independent here,
        # but the equivalence claim is up-to-row-order).
        d_order = np.lexsort(np.column_stack([d_dense, d_lower, d_upper]).T)
        v_order = np.lexsort(np.column_stack([v_dense, v_lower, v_upper]).T)
        assert np.allclose(d_dense[d_order], v_dense[v_order], atol=1e-12, rtol=0.0)
        assert np.array_equal(d_lower[d_order], v_lower[v_order])
        assert np.array_equal(d_upper[d_order], v_upper[v_order])


class TestBitIdenticalAllocations:
    @pytest.mark.parametrize("policy_spec", _SS_POLICY_SPECS)
    def test_churn_allocations_bit_identical(self, oracle, policy_spec):
        steps = _churn_problems(oracle)
        dict_allocations = _session_allocations(policy_spec, steps, "dict")
        vec_allocations = _session_allocations(policy_spec, steps, "vectorized")
        for dict_allocation, vec_allocation in zip(dict_allocations, vec_allocations):
            assert dict_allocation.combinations == vec_allocation.combinations
            for combination in dict_allocation.combinations:
                assert np.array_equal(
                    dict_allocation.row(combination), vec_allocation.row(combination)
                ), f"{policy_spec}: allocation differs on {combination}"

    @pytest.mark.parametrize("mode", ["round", "ideal", "physical"])
    def test_simulator_results_identical_in_all_modes(self, oracle, mode):
        """End-to-end schedules agree between assembly paths in every mode."""
        trace = TraceGenerator(oracle).generate_continuous(
            num_jobs=10, jobs_per_hour=8.0, seed=4
        )
        spec = ClusterSpec.from_counts({"v100": 1, "p100": 1, "k80": 1})

        def run(assembly):
            with lp_assembly(assembly):
                simulator = Simulator(
                    policy=make_policy("max_min_fairness+ss"),
                    cluster_spec=spec,
                    oracle=oracle,
                    config=SimulatorConfig(mode=mode, round_duration_seconds=360.0),
                )
                return simulator.run(trace)

        dict_result = run("dict")
        vec_result = run("vectorized")
        assert dict_result.end_time == vec_result.end_time
        assert dict_result.num_rounds == vec_result.num_rounds
        assert dict_result.total_cost_dollars == vec_result.total_cost_dollars
        for job_id, record in dict_result.records.items():
            other = vec_result.records[job_id]
            assert record.completion_time == other.completion_time
            assert record.steps_done == other.steps_done
            assert record.cost_dollars == other.cost_dollars
