"""Session-vs-scratch equivalence for every registry policy.

A policy session driven by the engine's delta stream must produce the same
allocation as the stateless ``compute_allocation`` API on the equivalent
from-scratch problem.  Several of the Table-1 LPs have *degenerate* optima
(interchangeable jobs make many vertices optimal), where HiGHS may return
different — equally optimal — allocations for structurally different but
mathematically identical programs; for those the assertion is equality of
the policy's own objective (to solver tolerance) plus validity, with exact
row equality asserted whenever the allocations do coincide.
"""

import math

import numpy as np
import pytest

from repro.cluster import ClusterSpec
from repro.core import (
    AllocationEngine,
    EstimateRefined,
    JobAdded,
    JobRemoved,
    PolicyProblem,
    available_policies,
    make_policy,
)
from repro.core.effective_throughput import (
    effective_throughput,
    equal_share_reference_throughput,
    fastest_reference_throughput,
)
from repro.core.finish_time_fairness import finish_time_fairness_rho
from repro.core.session import RebuildSession
from repro.estimator import ThroughputEstimator
from repro.workloads import ColocatedThroughputs, ColocationModel, ThroughputOracle, TraceGenerator

_REL_TOL = 1e-4
#: Bisection policies only locate their optimum to a relative tolerance.
_BISECTION_TOL = 5e-2


@pytest.fixture(scope="module")
def oracle():
    return ThroughputOracle()


@pytest.fixture(scope="module")
def cluster(oracle):
    return ClusterSpec.from_counts(
        {name: 2 for name in oracle.registry.names}, registry=oracle.registry
    )


def _policy_objective(name, policy, problem, allocation):
    """The scalar the policy optimizes, evaluated at an allocation."""
    matrix = policy.effective_matrix(problem)
    throughputs = {
        job_id: effective_throughput(matrix, allocation, job_id)
        for job_id in problem.job_ids
    }
    from repro.core import parse_policy_spec

    base = parse_policy_spec(name)[0]
    if base in ("max_min_fairness", "max_min_fairness_water_filling"):
        return min(
            throughputs[j]
            * problem.scale_factor(j)
            / (
                problem.priority_weight(j)
                * equal_share_reference_throughput(matrix, problem.cluster_spec, j)
            )
            for j in problem.job_ids
        )
    if base == "fifo":
        order = problem.arrival_order()
        total = len(order)
        return sum(
            (total - position) * throughputs[j] / fastest_reference_throughput(matrix, j)
            for position, j in enumerate(order)
        )
    if base == "shortest_job_first":
        ranked = policy.ranked_jobs(problem)
        total = len(ranked)
        return sum(
            (total - position) * throughputs[j] / fastest_reference_throughput(matrix, j)
            for position, (j, _duration) in enumerate(ranked)
        )
    if base == "max_total_throughput":
        return sum(
            throughputs[j] / float(matrix.isolated_throughputs(j).max())
            for j in problem.job_ids
        )
    if base == "makespan":
        return max(
            (problem.remaining_steps(j) / throughputs[j]) if throughputs[j] > 0 else math.inf
            for j in problem.job_ids
        )
    if base == "finish_time_fairness":
        num_jobs = problem.num_jobs
        from repro.core.effective_throughput import isolated_reference_throughput

        return max(
            finish_time_fairness_rho(
                problem.elapsed(j),
                problem.remaining_steps(j),
                throughputs[j],
                isolated_reference_throughput(
                    matrix,
                    problem.cluster_spec,
                    j,
                    num_jobs=num_jobs,
                    scale_factor=problem.scale_factor(j),
                ),
            )
            for j in problem.job_ids
        )
    if base in ("min_cost", "min_cost_slo"):
        costs = matrix.registry.costs_per_hour()
        cost = 0.0
        for combination in allocation.combinations:
            scale = max(problem.scale_factor(j) for j in combination)
            cost += float(np.dot(allocation.row(combination), costs)) * scale
        numerator = sum(
            throughputs[j] / fastest_reference_throughput(matrix, j)
            for j in problem.job_ids
        )
        return numerator / (cost + 1e-9)
    return None  # combinatorial baselines: exact equality is required instead


def _assert_equivalent(name, policy, problem, session_allocation, scratch_allocation):
    session_allocation.validate(problem.cluster_spec)
    scratch_allocation.validate(problem.cluster_spec)
    exact = all(
        np.allclose(
            session_allocation.row(combination),
            scratch_allocation.row(combination),
            atol=1e-6,
        )
        for combination in scratch_allocation.combinations
    )
    if exact:
        return
    session_value = _policy_objective(name, policy, problem, session_allocation)
    scratch_value = _policy_objective(name, policy, problem, scratch_allocation)
    assert session_value is not None, (
        f"{name}: allocations differ but policy has no objective evaluator"
    )
    from repro.core import parse_policy_spec

    tolerance = (
        _BISECTION_TOL
        if parse_policy_spec(name)[0] in ("makespan", "finish_time_fairness")
        else _REL_TOL
    )
    assert session_value == pytest.approx(scratch_value, rel=tolerance), (
        f"{name}: session objective {session_value} != scratch {scratch_value}"
    )


def _churn_states(oracle, num_initial=8, num_events=10, seed=11):
    """Deterministic add/remove event sequence over generated jobs."""
    trace = TraceGenerator(oracle=oracle).generate_static(
        num_jobs=num_initial + num_events, seed=seed
    )
    jobs = list(trace.jobs)
    rng = np.random.default_rng(seed)
    events = [("add", job) for job in jobs[:num_initial]]
    pending = jobs[num_initial:]
    active = list(jobs[:num_initial])
    for job in pending:
        if len(active) > 3 and rng.random() < 0.5:
            victim = active.pop(int(rng.integers(0, len(active))))
            events.append(("remove", victim))
        events.append(("add", job))
        active.append(job)
    return events


class TestSessionMatchesScratch:
    @pytest.mark.parametrize("name", sorted(available_policies()))
    def test_randomized_churn_equivalence(self, name, oracle, cluster):
        session_policy = make_policy(name)
        scratch_policy = make_policy(name)  # separate instance: identical RNG draws
        engine = AllocationEngine(oracle, space_sharing=session_policy.space_sharing)
        active = {}
        session = None
        compared = 0
        for action, job in _churn_states(oracle):
            if action == "add":
                engine.add_job(job)
                active[job.job_id] = job
            else:
                engine.remove_job(job.job_id)
                del active[job.job_id]
            if len(active) < 2:
                continue
            problem = PolicyProblem(
                jobs=dict(active),
                throughputs=engine.matrix(),
                cluster_spec=cluster,
                steps_remaining={
                    job_id: job.total_steps * (0.25 + 0.75 * ((job_id % 4) / 4))
                    for job_id, job in active.items()
                },
                time_elapsed={job_id: 1800.0 * (job_id % 3) for job_id in active},
                current_time=3600.0,
            )
            deltas = engine.drain_deltas()
            if session is None:
                session = session_policy.session(problem)
            else:
                session.apply(deltas)
            session_allocation = session.solve(problem)
            scratch_allocation = scratch_policy.compute_allocation(problem)
            _assert_equivalent(
                name, scratch_policy, problem, session_allocation, scratch_allocation
            )
            compared += 1
        assert compared >= 5

    def test_estimate_refinement_reaches_session(self, oracle, cluster):
        """EstimateRefined deltas must update the session's pair rows."""
        model = ColocationModel(oracle)
        estimator = ThroughputEstimator(model, profile_fraction=0.4, seed=3)
        policy = make_policy("max_min_fairness+ss")
        scratch_policy = make_policy("max_min_fairness+ss")
        engine = AllocationEngine(
            oracle, space_sharing=True, colocation_model=estimator
        )
        trace = TraceGenerator(oracle=oracle).generate_static(num_jobs=8, seed=5)
        jobs = list(trace.jobs)
        engine.add_jobs(jobs)
        active = {job.job_id: job for job in jobs}
        problem = PolicyProblem(
            jobs=active, throughputs=engine.matrix(), cluster_spec=cluster
        )
        session = policy.session(problem)
        session.solve(problem)
        engine.drain_deltas()

        # Refine one pair estimate; the engine must surface a typed delta.
        first, second = jobs[0], jobs[1]
        accelerator = oracle.registry.names[0]
        truth = model.colocated_throughputs(first.job_type, second.job_type, accelerator)
        estimator.observe(
            first.job_type,
            second.job_type,
            accelerator,
            ColocatedThroughputs(first=truth.first * 0.5, second=truth.second * 0.5),
        )
        matrix = engine.matrix()
        deltas = engine.drain_deltas()
        refined = [d for d in deltas if isinstance(d, EstimateRefined)]
        assert refined, "engine did not emit an EstimateRefined delta"
        assert refined[0].job_types is not None
        assert set(refined[0].job_types) == {first.job_type, second.job_type}

        problem = PolicyProblem(jobs=active, throughputs=matrix, cluster_spec=cluster)
        session.apply(deltas)
        _assert_equivalent(
            "max_min_fairness+ss",
            scratch_policy,
            problem,
            session.solve(problem),
            scratch_policy.compute_allocation(problem),
        )

    def test_engine_emits_job_deltas(self, oracle):
        engine = AllocationEngine(oracle)
        trace = TraceGenerator(oracle=oracle).generate_static(num_jobs=3, seed=0)
        jobs = list(trace.jobs)
        engine.add_jobs(jobs)
        engine.remove_job(jobs[0].job_id)
        deltas = engine.drain_deltas()
        assert [type(d) for d in deltas] == [JobAdded, JobAdded, JobAdded, JobRemoved]
        assert deltas[0].job is jobs[0]
        assert deltas[-1].job_id == jobs[0].job_id
        assert engine.drain_deltas() == []

    def test_default_session_is_rebuild(self, oracle, cluster):
        policy = make_policy("isolated")
        trace = TraceGenerator(oracle=oracle).generate_static(num_jobs=3, seed=0)
        jobs = {job.job_id: job for job in trace.jobs}
        from repro.core.throughput_matrix import build_throughput_matrix

        problem = PolicyProblem(
            jobs=jobs,
            throughputs=build_throughput_matrix(list(jobs.values()), oracle),
            cluster_spec=cluster,
        )
        session = policy.session(problem)
        assert isinstance(session, RebuildSession)
        allocation = session.solve()
        for combination in allocation.combinations:
            np.testing.assert_allclose(
                allocation.row(combination),
                policy.compute_allocation(problem).row(combination),
            )

    def test_solve_without_problem_reuses_last_snapshot(self, oracle, cluster):
        policy = make_policy("max_min_fairness")
        trace = TraceGenerator(oracle=oracle).generate_static(num_jobs=4, seed=2)
        jobs = {job.job_id: job for job in trace.jobs}
        from repro.core.throughput_matrix import build_throughput_matrix

        problem = PolicyProblem(
            jobs=jobs,
            throughputs=build_throughput_matrix(list(jobs.values()), oracle),
            cluster_spec=cluster,
        )
        session = policy.session(problem)
        first = session.solve()
        second = session.solve()
        for combination in first.combinations:
            np.testing.assert_allclose(
                first.row(combination), second.row(combination), atol=1e-9
            )
