"""Registry-wide session-vs-rebuild equivalence over randomized churn.

Every registry policy — in every ``+ss`` / ``@agnostic`` variant its
constructor accepts, water-filling and hierarchical included — is driven
through the shared churn harness
(:func:`repro.harness.run_session_churn_equivalence`): one long-lived
session fed the engine's delta stream, compared at every step against a
fresh :class:`~repro.core.session.RebuildSession` on the identical problem
snapshot.  The comparison protocol (exact rows when the optima are unique,
the policy's own objective — or, for the water-filling family, the full
sorted level profile — to solver tolerance otherwise) lives in
:mod:`repro.harness.equivalence`, replacing the per-policy evaluators that
used to be copied around here.
"""

import numpy as np
import pytest

from repro.cluster import ClusterSpec
from repro.core import (
    AllocationEngine,
    EstimateRefined,
    JobAdded,
    JobRemoved,
    PolicyProblem,
    available_policies,
    make_policy,
    parse_policy_spec,
)
from repro.core.session import RebuildSession
from repro.core.water_filling import WaterFillingSession
from repro.estimator import ThroughputEstimator
from repro.exceptions import ConfigurationError
from repro.harness import assert_session_equivalent, run_session_churn_equivalence
from repro.workloads import ColocatedThroughputs, ColocationModel, ThroughputOracle, TraceGenerator

#: Variant suffixes every base spec is probed with.
_VARIANT_SUFFIXES = ("", "+ss", "@agnostic", "+ss@agnostic")


def _registry_variant_specs():
    """Every base registry policy crossed with the variants it supports."""
    specs = []
    for name in available_policies():
        if parse_policy_spec(name)[0] != name:
            continue  # alias spelling of another spec
        for suffix in _VARIANT_SUFFIXES:
            spec = name + suffix
            try:
                make_policy(spec)
            except ConfigurationError:
                continue  # variant not supported by this constructor
            specs.append(spec)
    return specs


_ALL_SPECS = _registry_variant_specs()


@pytest.fixture(scope="module")
def oracle():
    return ThroughputOracle()


@pytest.fixture(scope="module")
def cluster(oracle):
    return ClusterSpec.from_counts(
        {name: 2 for name in oracle.registry.names}, registry=oracle.registry
    )


class TestSessionMatchesScratch:
    @pytest.mark.parametrize("spec", _ALL_SPECS)
    def test_randomized_churn_equivalence(self, spec, oracle, cluster):
        counters = run_session_churn_equivalence(spec, oracle, cluster)
        assert counters["steps"] >= 5

    def test_variant_sweep_covers_the_whole_registry(self):
        """Guard: the parametrization really spans every base and both axes."""
        bases = {parse_policy_spec(spec)[0] for spec in _ALL_SPECS}
        assert bases == {
            name for name in available_policies() if parse_policy_spec(name)[0] == name
        }
        assert "hierarchical" in bases
        assert "max_min_fairness_water_filling+ss" in _ALL_SPECS
        assert "hierarchical+ss@agnostic" in _ALL_SPECS

    def test_water_filling_sessions_are_incremental(self, oracle, cluster):
        """The water-filling family no longer falls back to RebuildSession."""
        trace = TraceGenerator(oracle=oracle).generate_static(num_jobs=4, seed=0)
        jobs = {job.with_entity(job.job_id % 3).job_id: job.with_entity(job.job_id % 3) for job in trace.jobs}
        from repro.core.throughput_matrix import build_throughput_matrix

        problem = PolicyProblem(
            jobs=jobs,
            throughputs=build_throughput_matrix(list(jobs.values()), oracle),
            cluster_spec=cluster,
        )
        for spec in ("max_min_fairness_water_filling", "hierarchical"):
            session = make_policy(spec).session(problem)
            assert isinstance(session, WaterFillingSession)
        rebuild = make_policy("max_min_fairness_water_filling", incremental=False)
        assert isinstance(rebuild.session(problem), RebuildSession)

    @pytest.mark.parametrize("spec", ["max_min_fairness+ss", "max_min_fairness_water_filling+ss"])
    def test_estimate_refinement_reaches_session(self, spec, oracle, cluster):
        """EstimateRefined deltas must update the session's pair rows."""
        model = ColocationModel(oracle)
        estimator = ThroughputEstimator(model, profile_fraction=0.4, seed=3)
        policy = make_policy(spec)
        scratch_policy = make_policy(spec)
        engine = AllocationEngine(
            oracle, space_sharing=True, colocation_model=estimator
        )
        trace = TraceGenerator(oracle=oracle).generate_static(num_jobs=8, seed=5)
        jobs = list(trace.jobs)
        engine.add_jobs(jobs)
        active = {job.job_id: job for job in jobs}
        problem = PolicyProblem(
            jobs=active, throughputs=engine.matrix(), cluster_spec=cluster
        )
        session = policy.session(problem)
        session.solve(problem)
        engine.drain_deltas()

        # Refine one pair estimate; the engine must surface a typed delta.
        first, second = jobs[0], jobs[1]
        accelerator = oracle.registry.names[0]
        truth = model.colocated_throughputs(first.job_type, second.job_type, accelerator)
        estimator.observe(
            first.job_type,
            second.job_type,
            accelerator,
            ColocatedThroughputs(first=truth.first * 0.5, second=truth.second * 0.5),
        )
        matrix = engine.matrix()
        deltas = engine.drain_deltas()
        refined = [d for d in deltas if isinstance(d, EstimateRefined)]
        assert refined, "engine did not emit an EstimateRefined delta"
        assert refined[0].job_types is not None
        assert set(refined[0].job_types) == {first.job_type, second.job_type}

        problem = PolicyProblem(jobs=active, throughputs=matrix, cluster_spec=cluster)
        session.apply(deltas)
        assert_session_equivalent(
            spec,
            scratch_policy,
            problem,
            session.solve(problem),
            RebuildSession(scratch_policy, problem).solve(problem),
        )

    def test_engine_emits_job_deltas(self, oracle):
        from repro.core.session import TypeCountChanged

        engine = AllocationEngine(oracle)
        trace = TraceGenerator(oracle=oracle).generate_static(num_jobs=3, seed=0)
        jobs = list(trace.jobs)
        engine.add_jobs(jobs)
        engine.remove_job(jobs[0].job_id)
        deltas = engine.drain_deltas()
        # Every arrival/exit emits its per-job delta followed by the group
        # histogram update.
        assert [type(d) for d in deltas] == [
            JobAdded,
            TypeCountChanged,
            JobAdded,
            TypeCountChanged,
            JobAdded,
            TypeCountChanged,
            JobRemoved,
            TypeCountChanged,
        ]
        assert deltas[0].job is jobs[0]
        assert deltas[-2].job_id == jobs[0].job_id
        assert all(d.count >= 0 for d in deltas if isinstance(d, TypeCountChanged))
        assert engine.drain_deltas() == []

    def test_default_session_is_rebuild(self, oracle, cluster):
        policy = make_policy("isolated")
        trace = TraceGenerator(oracle=oracle).generate_static(num_jobs=3, seed=0)
        jobs = {job.job_id: job for job in trace.jobs}
        from repro.core.throughput_matrix import build_throughput_matrix

        problem = PolicyProblem(
            jobs=jobs,
            throughputs=build_throughput_matrix(list(jobs.values()), oracle),
            cluster_spec=cluster,
        )
        session = policy.session(problem)
        assert isinstance(session, RebuildSession)
        allocation = session.solve()
        for combination in allocation.combinations:
            np.testing.assert_allclose(
                allocation.row(combination),
                policy.compute_allocation(problem).row(combination),
            )

    def test_solve_without_problem_reuses_last_snapshot(self, oracle, cluster):
        policy = make_policy("max_min_fairness")
        trace = TraceGenerator(oracle=oracle).generate_static(num_jobs=4, seed=2)
        jobs = {job.job_id: job for job in trace.jobs}
        from repro.core.throughput_matrix import build_throughput_matrix

        problem = PolicyProblem(
            jobs=jobs,
            throughputs=build_throughput_matrix(list(jobs.values()), oracle),
            cluster_spec=cluster,
        )
        session = policy.session(problem)
        first = session.solve()
        second = session.solve()
        for combination in first.combinations:
            np.testing.assert_allclose(
                first.row(combination), second.row(combination), atol=1e-9
            )
