"""Tests for allocation matrices and their validity constraints."""

import numpy as np
import pytest

from repro.cluster import ClusterSpec, default_registry
from repro.core import Allocation, ThroughputMatrix
from repro.exceptions import AllocationError, UnknownJobError


@pytest.fixture
def registry():
    return default_registry()


@pytest.fixture
def spec(registry):
    return ClusterSpec.from_counts({"v100": 1, "p100": 1, "k80": 1}, registry=registry)


class TestConstruction:
    def test_rows_normalized_and_copied(self, registry):
        allocation = Allocation(registry, {(1, 0): np.array([0.5, 0.0, 0.0])})
        assert allocation.combinations == ((0, 1),)

    def test_bad_row_shape_rejected(self, registry):
        with pytest.raises(AllocationError):
            Allocation(registry, {(0,): np.array([0.5, 0.5])})

    def test_zeros_constructor(self, registry):
        matrix = ThroughputMatrix(registry, {(0,): np.ones((1, 3)), (1,): np.ones((1, 3))})
        allocation = Allocation.zeros(matrix)
        assert allocation.job_total(0) == 0.0
        assert allocation.combinations == ((0,), (1,))


class TestQueries:
    @pytest.fixture
    def allocation(self, registry):
        return Allocation(
            registry,
            {
                (0,): np.array([0.6, 0.4, 0.0]),
                (1,): np.array([0.2, 0.0, 0.2]),
                (0, 1): np.array([0.0, 0.0, 0.3]),
            },
        )

    def test_job_total_includes_pair_rows(self, allocation):
        assert allocation.job_total(0) == pytest.approx(1.3)
        assert allocation.job_total(1) == pytest.approx(0.7)

    def test_job_row_sums_rows_containing_job(self, allocation):
        np.testing.assert_allclose(allocation.job_row(1), [0.2, 0.0, 0.5])

    def test_value_lookup(self, allocation):
        assert allocation.value((0,), "v100") == pytest.approx(0.6)
        assert allocation.value((1, 0), "k80") == pytest.approx(0.3)

    def test_unknown_combination_raises(self, allocation):
        with pytest.raises(UnknownJobError):
            allocation.row((5,))

    def test_worker_usage_counts_scale_factors(self, registry):
        allocation = Allocation(
            registry,
            {(0,): np.array([0.5, 0.0, 0.0])},
            scale_factors={0: 4},
        )
        np.testing.assert_allclose(allocation.worker_usage(), [2.0, 0.0, 0.0])

    def test_as_dict_returns_copies(self, allocation):
        exported = allocation.as_dict()
        exported[(0,)][0] = 99.0
        assert allocation.value((0,), "v100") == pytest.approx(0.6)


class TestValidation:
    def test_valid_allocation_passes(self, registry, spec):
        allocation = Allocation(
            registry,
            {(0,): np.array([0.5, 0.3, 0.2]), (1,): np.array([0.5, 0.5, 0.0])},
        )
        allocation.validate(spec)
        assert allocation.is_valid(spec)

    def test_entry_above_one_fails(self, registry, spec):
        allocation = Allocation(registry, {(0,): np.array([1.2, 0.0, 0.0])})
        with pytest.raises(AllocationError):
            allocation.validate(spec)

    def test_job_total_above_one_fails(self, registry, spec):
        allocation = Allocation(
            registry,
            {(0,): np.array([0.8, 0.0, 0.0]), (0, 1): np.array([0.0, 0.4, 0.0])},
        )
        # Also add job 1's singleton so the structure is complete.
        with pytest.raises(AllocationError):
            allocation.validate(spec)

    def test_worker_oversubscription_fails(self, registry, spec):
        allocation = Allocation(
            registry,
            {
                (0,): np.array([0.9, 0.0, 0.0]),
                (1,): np.array([0.9, 0.0, 0.0]),
            },
            scale_factors={0: 1, 1: 1},
        )
        # 1.8 expected V100 workers > 1 available.
        with pytest.raises(AllocationError):
            allocation.validate(spec)

    def test_clipped_removes_round_off(self, registry, spec):
        allocation = Allocation(registry, {(0,): np.array([1.0 + 1e-6, -1e-9, 0.0])})
        clipped = allocation.clipped()
        assert clipped.value((0,), "v100") == 1.0
        assert clipped.value((0,), "p100") == 0.0

    def test_repr_lists_rows(self, registry):
        allocation = Allocation(registry, {(0,): np.array([0.1, 0.2, 0.3])})
        assert "(0,)" in repr(allocation)
