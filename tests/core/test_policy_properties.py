"""Property-based tests over the policy framework (Section 4.4 properties).

These tests generate random mixes of jobs and cluster shapes with Hypothesis
and check the structural properties the paper states for Gavel's policies:

* every policy returns a *valid* allocation (constraints (1)-(3) of §3.1);
* on a homogeneous cluster the heterogeneity-aware policies coincide with
  their heterogeneity-agnostic counterparts;
* the fairness policies have sharing incentive: nobody is worse off than
  under the static 1/n split;
* colocation-aware solutions are never worse than colocation-free ones.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.cluster import ClusterSpec, default_registry
from repro.core import (
    FifoPolicy,
    IsolatedPolicy,
    MakespanPolicy,
    MaxMinFairnessPolicy,
    MaxTotalThroughputPolicy,
    PolicyProblem,
    ShortestJobFirstPolicy,
    build_throughput_matrix,
    effective_throughput,
)
from repro.core.effective_throughput import equal_share_reference_throughput
from repro.workloads import Job, ThroughputOracle, default_job_type_table

_ORACLE = ThroughputOracle()
_JOB_TYPES = list(default_job_type_table().names)

_job_types_strategy = st.lists(
    st.sampled_from(_JOB_TYPES), min_size=2, max_size=6
)
_cluster_strategy = st.tuples(
    st.integers(1, 3), st.integers(0, 3), st.integers(0, 3)
).filter(lambda counts: sum(counts) >= 2)

_POLICIES = [
    MaxMinFairnessPolicy(),
    FifoPolicy(),
    ShortestJobFirstPolicy(),
    MaxTotalThroughputPolicy(),
    MakespanPolicy(),
]


def _problem_from(job_types, cluster_counts, steps=200_000.0):
    jobs = [
        Job(job_id=i, job_type=job_type, total_steps=steps, arrival_time=float(i))
        for i, job_type in enumerate(job_types)
    ]
    spec = ClusterSpec.from_counts(
        {"v100": cluster_counts[0], "p100": cluster_counts[1], "k80": cluster_counts[2]}
    )
    matrix = build_throughput_matrix(jobs, _ORACLE)
    return PolicyProblem(
        jobs={job.job_id: job for job in jobs}, throughputs=matrix, cluster_spec=spec
    )


class TestValidityProperty:
    @given(job_types=_job_types_strategy, cluster=_cluster_strategy)
    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_all_policies_return_valid_allocations(self, job_types, cluster):
        problem = _problem_from(job_types, cluster)
        for policy in _POLICIES:
            allocation = policy.compute_allocation(problem)
            allocation.validate(problem.cluster_spec)

    @given(job_types=_job_types_strategy, cluster=_cluster_strategy)
    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_effective_throughputs_nonnegative(self, job_types, cluster):
        problem = _problem_from(job_types, cluster)
        allocation = MaxMinFairnessPolicy().compute_allocation(problem)
        for job_id in problem.job_ids:
            assert effective_throughput(problem.throughputs, allocation, job_id) >= -1e-9


class TestSharingIncentive:
    @given(job_types=_job_types_strategy, cluster=_cluster_strategy)
    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_las_no_worse_than_isolated_split(self, job_types, cluster):
        """The minimum normalized throughput under LAS is at least that of the 1/n split."""
        problem = _problem_from(job_types, cluster)
        matrix = problem.throughputs
        fair = MaxMinFairnessPolicy().compute_allocation(problem)
        isolated = IsolatedPolicy().compute_allocation(problem)

        def min_normalized(allocation):
            values = []
            for job_id in problem.job_ids:
                reference = equal_share_reference_throughput(matrix, problem.cluster_spec, job_id)
                values.append(effective_throughput(matrix, allocation, job_id) / reference)
            return min(values)

        assert min_normalized(fair) >= min_normalized(isolated) - 1e-6


class TestHomogeneousReduction:
    @given(
        job_types=_job_types_strategy,
        num_gpus=st.integers(1, 4),
    )
    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_aware_equals_agnostic_on_homogeneous_cluster(self, job_types, num_gpus):
        """With one accelerator type there is no heterogeneity to exploit (§4.4)."""
        problem = _problem_from(job_types, (num_gpus, 0, 0))
        matrix = problem.throughputs
        aware = MaxMinFairnessPolicy().compute_allocation(problem)
        agnostic = MaxMinFairnessPolicy(heterogeneity_agnostic=True).compute_allocation(problem)
        for job_id in problem.job_ids:
            a = effective_throughput(matrix, aware, job_id)
            b = effective_throughput(matrix, agnostic, job_id)
            assert a == pytest.approx(b, rel=0.05, abs=1e-6)


class TestColocationNeverHurts:
    @given(job_types=st.lists(st.sampled_from(_JOB_TYPES), min_size=3, max_size=5))
    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_space_sharing_objective_not_worse(self, job_types):
        jobs = [
            Job(job_id=i, job_type=job_type, total_steps=1e5) for i, job_type in enumerate(job_types)
        ]
        spec = ClusterSpec.from_counts({"v100": 1, "p100": 1, "k80": 1})
        matrix = build_throughput_matrix(jobs, _ORACLE, space_sharing=True)
        problem = PolicyProblem(
            jobs={job.job_id: job for job in jobs}, throughputs=matrix, cluster_spec=spec
        )

        def min_normalized(allocation):
            values = []
            for job_id in problem.job_ids:
                reference = equal_share_reference_throughput(matrix, spec, job_id)
                values.append(effective_throughput(matrix, allocation, job_id) / reference)
            return min(values)

        plain = MaxMinFairnessPolicy(space_sharing=False).compute_allocation(problem)
        shared = MaxMinFairnessPolicy(space_sharing=True).compute_allocation(problem)
        assert min_normalized(shared) >= min_normalized(plain) - 1e-3
