"""Tests for hierarchical (multi-level) policies."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.cluster import ClusterSpec, default_registry
from repro.core import (
    EntitySpec,
    HierarchicalPolicy,
    PolicyProblem,
    ThroughputMatrix,
    WaterFillingFairnessPolicy,
    effective_throughput,
)
from repro.exceptions import ConfigurationError
from repro.workloads import Job


def _entity_problem(jobs_per_entity=(2, 2, 2), num_gpus=6):
    """Identical jobs split across entities on identical GPUs."""
    registry = default_registry().subset(["v100"])
    num_jobs = sum(jobs_per_entity)
    matrix = ThroughputMatrix(registry, {(i,): np.array([[1.0]]) for i in range(num_jobs)})
    spec = ClusterSpec.from_counts({"v100": num_gpus}, registry=registry)
    jobs = {}
    job_id = 0
    for entity_id, count in enumerate(jobs_per_entity):
        for position in range(count):
            jobs[job_id] = Job(
                job_id=job_id,
                job_type="x",
                total_steps=1000.0,
                arrival_time=float(job_id),
                entity_id=entity_id,
            )
            job_id += 1
    problem = PolicyProblem(jobs=jobs, throughputs=matrix, cluster_spec=spec)
    return problem, matrix


class TestEntitySpec:
    def test_valid(self):
        assert EntitySpec(entity_id=0, weight=2.0).internal_policy == "fairness"

    def test_invalid_weight(self):
        with pytest.raises(ConfigurationError):
            EntitySpec(entity_id=0, weight=0.0)

    def test_invalid_policy(self):
        with pytest.raises(ConfigurationError):
            EntitySpec(entity_id=0, weight=1.0, internal_policy="lifo")


class TestHierarchicalPolicy:
    def test_entity_weights_respected_under_contention(self):
        """With 3 GPUs and entities weighted 1:2, entity 1 gets twice the share."""
        problem, matrix = _entity_problem(jobs_per_entity=(2, 2), num_gpus=2)
        policy = HierarchicalPolicy(
            [EntitySpec(0, weight=1.0), EntitySpec(1, weight=2.0)]
        )
        allocation = policy.compute_allocation(problem)
        entity0 = sum(effective_throughput(matrix, allocation, j) for j in (0, 1))
        entity1 = sum(effective_throughput(matrix, allocation, j) for j in (2, 3))
        assert entity1 / entity0 == pytest.approx(2.0, rel=0.2)

    def test_fairness_within_entity(self):
        problem, matrix = _entity_problem(jobs_per_entity=(3,), num_gpus=1)
        policy = HierarchicalPolicy([EntitySpec(0, weight=1.0, internal_policy="fairness")])
        allocation = policy.compute_allocation(problem)
        throughputs = [effective_throughput(matrix, allocation, j) for j in range(3)]
        assert max(throughputs) - min(throughputs) <= 0.1

    def test_fifo_within_entity_prefers_earliest(self):
        problem, matrix = _entity_problem(jobs_per_entity=(3,), num_gpus=1)
        policy = HierarchicalPolicy([EntitySpec(0, weight=1.0, internal_policy="fifo")])
        allocation = policy.compute_allocation(problem)
        throughputs = [effective_throughput(matrix, allocation, j) for j in range(3)]
        assert throughputs[0] >= throughputs[1] - 1e-6
        assert throughputs[0] >= throughputs[2] - 1e-6
        assert throughputs[0] == pytest.approx(1.0, abs=0.1)

    def test_unused_capacity_given_to_other_entities(self):
        """When one entity cannot use its full share, others absorb it (water filling)."""
        problem, matrix = _entity_problem(jobs_per_entity=(1, 5), num_gpus=6)
        policy = HierarchicalPolicy(
            [EntitySpec(0, weight=5.0), EntitySpec(1, weight=1.0)]
        )
        allocation = policy.compute_allocation(problem)
        # Entity 0 has one job: it can use at most one GPU even with weight 5;
        # entity 1's five jobs should soak up the remaining five GPUs.
        entity1 = sum(effective_throughput(matrix, allocation, j) for j in range(1, 6))
        assert entity1 == pytest.approx(5.0, abs=0.3)

    def test_jobs_without_entity_rejected(self, mixed_problem):
        policy = HierarchicalPolicy([EntitySpec(0, weight=1.0)])
        with pytest.raises(ConfigurationError):
            policy.compute_allocation(mixed_problem)

    def test_unknown_entity_rejected(self):
        problem, _ = _entity_problem(jobs_per_entity=(2,), num_gpus=2)
        policy = HierarchicalPolicy([EntitySpec(5, weight=1.0)])
        with pytest.raises(ConfigurationError):
            policy.compute_allocation(problem)

    def test_duplicate_entities_rejected(self):
        with pytest.raises(ConfigurationError):
            HierarchicalPolicy([EntitySpec(0, weight=1.0), EntitySpec(0, weight=2.0)])

    def test_no_entities_rejected(self):
        with pytest.raises(ConfigurationError):
            HierarchicalPolicy([])

    def test_allocation_valid_on_heterogeneous_cluster(self, oracle):
        from repro.core import build_throughput_matrix

        spec = ClusterSpec.from_counts({"v100": 3, "p100": 3, "k80": 3})
        jobs = [
            Job(job_id=i, job_type=t, total_steps=1e5, arrival_time=float(i), entity_id=i // 2)
            for i, t in enumerate(
                ["resnet50-bs64", "a3c-bs4", "lstm-bs20", "transformer-bs64", "resnet18-bs32", "recoder-bs1024"]
            )
        ]
        matrix = build_throughput_matrix(jobs, oracle)
        problem = PolicyProblem(
            jobs={j.job_id: j for j in jobs}, throughputs=matrix, cluster_spec=spec
        )
        policy = HierarchicalPolicy(
            [EntitySpec(0, weight=1.0), EntitySpec(1, weight=2.0), EntitySpec(2, weight=3.0, internal_policy="fifo")]
        )
        result = policy.compute_with_diagnostics(problem)
        result.allocation.validate(spec)
        assert set(result.normalized_throughputs) == set(problem.job_ids)


#: Random hierarchies for the _distribute_weights property tests: per-entity
#: ``(weight, internal policy, jobs in entity)`` plus a bottleneck mask.
_hierarchy_strategy = st.lists(
    st.tuples(
        st.floats(0.25, 8.0, allow_nan=False),
        st.sampled_from(["fairness", "fifo"]),
        st.integers(1, 4),
    ),
    min_size=1,
    max_size=4,
)
_bottleneck_seed = st.integers(0, 2**31 - 1)


def _hierarchy_case(layout, seed):
    """Build (entities, problem, bottlenecked) from a drawn hierarchy layout."""
    registry = default_registry().subset(["v100"])
    entities = []
    jobs = {}
    job_id = 0
    for entity_id, (weight, internal, num_jobs) in enumerate(layout):
        entities.append(EntitySpec(entity_id, weight=weight, internal_policy=internal))
        for _ in range(num_jobs):
            jobs[job_id] = Job(
                job_id=job_id,
                job_type="x",
                total_steps=1000.0,
                arrival_time=float(job_id),
                entity_id=entity_id,
            )
            job_id += 1
    matrix = ThroughputMatrix(registry, {(i,): np.array([[1.0]]) for i in jobs})
    spec = ClusterSpec.from_counts({"v100": max(1, len(jobs) // 2)}, registry=registry)
    problem = PolicyProblem(jobs=jobs, throughputs=matrix, cluster_spec=spec)
    rng = np.random.default_rng(seed)
    bottlenecked = {i for i in jobs if rng.random() < 0.4}
    return entities, problem, bottlenecked


class TestDistributeWeightsProperties:
    """Invariants of HierarchicalPolicy._distribute_weights (Section 4.3)."""

    @given(layout=_hierarchy_strategy, seed=_bottleneck_seed)
    @settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_conserves_total_weight_of_live_entities(self, layout, seed):
        """Distributed weight equals the summed weight of entities still in play."""
        entities, problem, bottlenecked = _hierarchy_case(layout, seed)
        policy = HierarchicalPolicy(entities)
        weights = policy._distribute_weights(problem, bottlenecked)
        live = {
            e.entity_id: e.weight
            for e in entities
            if any(
                problem.job(j).entity_id == e.entity_id and j not in bottlenecked
                for j in problem.job_ids
            )
        }
        assert sum(weights.values()) == pytest.approx(sum(live.values()))

    @given(layout=_hierarchy_strategy, seed=_bottleneck_seed)
    @settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_never_revives_bottlenecked_jobs_or_frozen_entities(self, layout, seed):
        """Bottlenecked jobs get zero weight; fully-bottlenecked entities stay dark."""
        entities, problem, bottlenecked = _hierarchy_case(layout, seed)
        policy = HierarchicalPolicy(entities)
        weights = policy._distribute_weights(problem, bottlenecked)
        for job_id in bottlenecked:
            assert weights[job_id] == 0.0
        for entity in entities:
            members = [j for j in problem.job_ids if problem.job(j).entity_id == entity.entity_id]
            if members and all(j in bottlenecked for j in members):
                assert sum(weights[j] for j in members) == 0.0

    @given(layout=_hierarchy_strategy, seed=_bottleneck_seed)
    @settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_permutation_invariant_over_entity_ids(self, layout, seed):
        """Relabelling entity ids permutes nothing observable: per-job weights match."""
        entities, problem, bottlenecked = _hierarchy_case(layout, seed)
        baseline = HierarchicalPolicy(entities)._distribute_weights(problem, bottlenecked)

        # Reverse the entity-id labels (a nontrivial permutation) and relabel
        # every job consistently; job ids — the observable axis — stay put.
        old_ids = [e.entity_id for e in entities]
        relabel = {old: new for old, new in zip(old_ids, reversed(old_ids))}
        permuted_entities = [
            EntitySpec(relabel[e.entity_id], e.weight, e.internal_policy) for e in entities
        ]
        permuted_jobs = {
            job_id: Job(
                job_id=job_id,
                job_type=job.job_type,
                total_steps=job.total_steps,
                arrival_time=job.arrival_time,
                entity_id=relabel[job.entity_id],
            )
            for job_id, job in problem.jobs.items()
        }
        permuted_problem = PolicyProblem(
            jobs=permuted_jobs,
            throughputs=problem.throughputs,
            cluster_spec=problem.cluster_spec,
        )
        permuted = HierarchicalPolicy(permuted_entities)._distribute_weights(
            permuted_problem, bottlenecked
        )
        assert set(baseline) == set(permuted)
        for job_id, weight in baseline.items():
            assert permuted[job_id] == pytest.approx(weight)


class TestEntityFallback:
    def test_round_robin_assigns_entityless_jobs(self):
        problem, matrix = _entity_problem(jobs_per_entity=(2, 2), num_gpus=2)
        stripped = PolicyProblem(
            jobs={
                job_id: Job(
                    job_id=job_id, job_type=job.job_type, total_steps=job.total_steps,
                    arrival_time=job.arrival_time,
                )
                for job_id, job in problem.jobs.items()
            },
            throughputs=matrix,
            cluster_spec=problem.cluster_spec,
        )
        strict = HierarchicalPolicy([EntitySpec(0, 1.0), EntitySpec(1, 2.0)])
        with pytest.raises(ConfigurationError):
            strict.compute_allocation(stripped)
        relaxed = HierarchicalPolicy(
            [EntitySpec(0, 1.0), EntitySpec(1, 2.0)], entity_fallback="round_robin"
        )
        allocation = relaxed.compute_allocation(stripped)
        allocation.validate(stripped.cluster_spec)

    def test_registry_hierarchical_defaults_to_round_robin(self):
        from repro.core import make_policy

        policy = make_policy("hierarchical")
        assert len(policy.entities) == 3
        assert policy._entity_fallback == "round_robin"

    def test_unknown_fallback_rejected(self):
        with pytest.raises(ConfigurationError):
            HierarchicalPolicy([EntitySpec(0, 1.0)], entity_fallback="guess")


class TestWaterFillingFairnessPolicy:
    def test_single_level_water_filling_valid(self, mixed_problem):
        allocation = WaterFillingFairnessPolicy().compute_allocation(mixed_problem)
        allocation.validate(mixed_problem.cluster_spec)

    def test_not_worse_than_plain_lp_for_the_minimum(self, mixed_problem):
        from repro.core import MaxMinFairnessPolicy
        from repro.core.effective_throughput import equal_share_reference_throughput

        matrix = mixed_problem.throughputs

        def min_normalized(allocation):
            values = []
            for job_id in mixed_problem.job_ids:
                reference = equal_share_reference_throughput(
                    matrix, mixed_problem.cluster_spec, job_id
                )
                values.append(effective_throughput(matrix, allocation, job_id) / reference)
            return min(values)

        plain = MaxMinFairnessPolicy().compute_allocation(mixed_problem)
        filled = WaterFillingFairnessPolicy().compute_allocation(mixed_problem)
        assert min_normalized(filled) >= min_normalized(plain) - 0.02
