"""Type-aggregated allocation: grouping, recovery, and churn equivalence.

The tentpole guarantee is that ``aggregation="type"`` is *exact* for the
supported policy bases: the aggregated LP (one representative per
``(job_type, scale_factor, priority_weight)`` group) reaches the same
optimum as the per-job baseline, and the proportional-split expansion hands
back a valid per-job allocation with equal shares inside every group.  The
registry-wide churn sweep below is the enforcement of that contract; the
unit tests pin the view/expansion mechanics it relies on.
"""

import numpy as np
import pytest

from repro.cluster import ClusterSpec
from repro.core import (
    AGGREGATION_SUPPORTED_BASES,
    AggregatedProblem,
    AggregatedSession,
    AllocationEngine,
    PolicyProblem,
    aggregation_key,
    make_policy,
    parse_policy_spec,
    supports_type_aggregation,
)
from repro.core.throughput_matrix import build_throughput_matrix
from repro.exceptions import ConfigurationError
from repro.harness import run_aggregated_churn_equivalence
from repro.workloads import Job, ThroughputOracle, TraceGenerator

#: Variant suffixes crossed with every supported base (mirrors test_session).
_VARIANT_SUFFIXES = ("", "+ss", "@agnostic", "+ss@agnostic")


def _supported_variant_specs():
    specs = []
    for base in sorted(AGGREGATION_SUPPORTED_BASES):
        for suffix in _VARIANT_SUFFIXES:
            spec = base + suffix
            try:
                make_policy(spec, aggregation="type")
            except ConfigurationError:
                continue
            specs.append(spec)
    return specs


_SUPPORTED_SPECS = _supported_variant_specs()


@pytest.fixture(scope="module")
def oracle():
    return ThroughputOracle()


@pytest.fixture(scope="module")
def cluster(oracle):
    return ClusterSpec.from_counts(
        {name: 4 for name in oracle.registry.names}, registry=oracle.registry
    )


def _duplicated_jobs(num_types=3, per_type=4):
    """``num_types * per_type`` jobs drawn from ``num_types`` distinct types."""
    types = ["resnet50-bs16", "a3c-bs4", "lstm-bs10"][:num_types]
    jobs = []
    for index in range(num_types * per_type):
        jobs.append(
            Job(
                job_id=index,
                job_type=types[index % num_types],
                total_steps=1000.0 + index,
            )
        )
    return jobs


class TestAggregationKey:
    def test_key_fields(self):
        job = Job(job_id=3, job_type="a3c-bs4", total_steps=10.0, scale_factor=2,
                  priority_weight=1.5)
        assert aggregation_key(job) == ("a3c-bs4", 2, 1.5)

    def test_supported_bases(self):
        assert supports_type_aggregation("max_min_fairness")
        assert supports_type_aggregation("max_total_throughput")
        assert supports_type_aggregation("min_cost")
        assert supports_type_aggregation("hierarchical")
        assert supports_type_aggregation("max_min_fairness_water_filling")
        assert not supports_type_aggregation("min_cost_slo")
        assert not supports_type_aggregation("finish_time_fairness")


class TestAggregatedProblemBuild:
    def _problem(self, oracle, cluster, jobs, space_sharing=False):
        matrix = build_throughput_matrix(jobs, oracle, space_sharing=space_sharing)
        return PolicyProblem(
            jobs={job.job_id: job for job in jobs},
            throughputs=matrix,
            cluster_spec=cluster,
        )

    def test_groups_and_representatives(self, oracle, cluster):
        jobs = _duplicated_jobs(num_types=3, per_type=4)
        view = AggregatedProblem.build(self._problem(oracle, cluster, jobs))
        assert len(view.groups) == 3
        for key, members in view.groups.items():
            assert len(members) == 4
            assert view.representatives[key] == min(members)
        # The inner problem has one job per group with the count recorded.
        assert view.problem.num_jobs == 3
        assert sorted(view.problem.group_counts.values()) == [4, 4, 4]

    def test_priority_weight_baked_with_count(self, oracle, cluster):
        jobs = _duplicated_jobs(num_types=2, per_type=3)
        view = AggregatedProblem.build(self._problem(oracle, cluster, jobs))
        for key, members in view.groups.items():
            rep = view.representatives[key]
            assert view.problem.priority_weight(rep) == pytest.approx(
                len(members) * 1.0
            )

    def test_matrix_rows_scale_with_types_not_jobs(self, oracle, cluster):
        jobs = _duplicated_jobs(num_types=3, per_type=8)  # 24 jobs, 3 types
        problem = self._problem(oracle, cluster, jobs, space_sharing=True)
        view = AggregatedProblem.build(problem)
        num_types = 3
        max_rows = num_types + num_types * (num_types + 1) // 2  # singles + pairs
        assert view.problem.throughputs.num_rows() <= max_rows
        assert problem.throughputs.num_rows() > view.problem.throughputs.num_rows()

    def test_same_group_pair_becomes_rep_rep_row(self, oracle, cluster):
        # Two colocatable jobs of one light type: the aggregated matrix keeps
        # a single duplicate-membership row for within-group sharing.
        jobs = [
            Job(job_id=0, job_type="a3c-bs4", total_steps=10.0),
            Job(job_id=1, job_type="a3c-bs4", total_steps=20.0),
        ]
        problem = self._problem(oracle, cluster, jobs, space_sharing=True)
        view = AggregatedProblem.build(problem)
        assert (0, 0) in view.problem.throughputs.combinations

    def test_rejects_already_aggregated_problem(self, oracle, cluster):
        jobs = _duplicated_jobs(num_types=2, per_type=2)
        view = AggregatedProblem.build(self._problem(oracle, cluster, jobs))
        with pytest.raises(ConfigurationError):
            AggregatedProblem.build(view.problem)

    def test_matrix_reuse_across_identical_views(self, oracle, cluster):
        jobs = _duplicated_jobs(num_types=2, per_type=3)
        problem = self._problem(oracle, cluster, jobs)
        first = AggregatedProblem.build(problem)
        second = AggregatedProblem.build(problem, previous=first)
        assert second.problem.throughputs is first.problem.throughputs


class TestExpansion:
    def test_expand_conserves_totals_and_usage(self, oracle, cluster):
        jobs = _duplicated_jobs(num_types=2, per_type=3)
        matrix = build_throughput_matrix(jobs, oracle, space_sharing=True)
        problem = PolicyProblem(
            jobs={job.job_id: job for job in jobs},
            throughputs=matrix,
            cluster_spec=cluster,
        )
        view = AggregatedProblem.build(problem)
        policy = make_policy("max_min_fairness+ss")
        aggregated = policy.compute_allocation(view.problem)
        expanded = view.expand(aggregated)
        expanded.validate(cluster)
        # Every group's member totals are equal and sum to the rep's total.
        for key, members in view.groups.items():
            rep = view.representatives[key]
            totals = [expanded.job_total(member) for member in members]
            np.testing.assert_allclose(totals, np.full(len(totals), totals[0]), atol=1e-9)
            assert sum(totals) == pytest.approx(aggregated.job_total(rep), abs=1e-6)

    def test_expand_degenerates_to_identity_for_singleton_groups(self, oracle, cluster):
        # All-distinct types: aggregation is the identity transformation.
        jobs = [
            Job(job_id=0, job_type="resnet50-bs16", total_steps=10.0),
            Job(job_id=1, job_type="a3c-bs4", total_steps=10.0),
            Job(job_id=2, job_type="lstm-bs10", total_steps=10.0),
        ]
        matrix = build_throughput_matrix(jobs, oracle)
        problem = PolicyProblem(
            jobs={job.job_id: job for job in jobs},
            throughputs=matrix,
            cluster_spec=cluster,
        )
        view = AggregatedProblem.build(problem)
        policy = make_policy("max_min_fairness")
        aggregated = policy.compute_allocation(view.problem)
        expanded = view.expand(aggregated)
        for combination in aggregated.combinations:
            np.testing.assert_allclose(
                expanded.row(combination), aggregated.row(combination), atol=1e-12
            )


class TestTypeModeEngine:
    def test_pair_rows_bounded_by_type_pairs(self, oracle):
        engine = AllocationEngine(oracle, space_sharing=True, aggregation="type")
        jobs = _duplicated_jobs(num_types=3, per_type=10)
        engine.add_jobs(jobs)
        pair_rows = [c for c in engine.matrix().combinations if len(c) == 2]
        assert len(pair_rows) <= 3 * 4 // 2  # at most C(3,2) + 3 same-type pairs
        assert engine.group_counts and sum(engine.group_counts.values()) == 30

    def test_removal_reseats_orphaned_representatives(self, oracle):
        engine = AllocationEngine(oracle, space_sharing=True, aggregation="type")
        jobs = _duplicated_jobs(num_types=2, per_type=3)
        engine.add_jobs(jobs)
        # Remove the smallest member of each type (the likely pair reps).
        engine.remove_job(0)
        engine.remove_job(1)
        matrix = engine.matrix()
        live = {job.job_id for job in jobs} - {0, 1}
        for combination in matrix.combinations:
            assert set(combination) <= live
        assert sum(engine.group_counts.values()) == 4


class TestChurnEquivalence:
    @pytest.mark.parametrize("spec", _SUPPORTED_SPECS)
    def test_registry_wide_aggregated_equivalence(self, spec, oracle, cluster):
        stats = run_aggregated_churn_equivalence(spec, oracle, cluster)
        assert stats["steps"] >= 5
        # LP size evidence: inner rows bounded by a function of active types,
        # never by the job count (types + all type pairs incl. same-type).
        types = stats["max_active_types"]
        assert stats["max_inner_rows"] <= types + types * (types + 1) // 2

    def test_supported_specs_cover_every_base(self):
        bases = {parse_policy_spec(spec)[0] for spec in _SUPPORTED_SPECS}
        assert bases == set(AGGREGATION_SUPPORTED_BASES)

    def test_unsupported_policy_rejected(self):
        with pytest.raises(ConfigurationError, match="aggregation"):
            make_policy("min_cost_slo", aggregation="type")
        with pytest.raises(ConfigurationError, match="aggregation"):
            make_policy("finish_time_fairness", aggregation="type")

    def test_unknown_aggregation_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            make_policy("max_min_fairness", aggregation="banana")

    def test_session_dispatch(self, oracle, cluster):
        jobs = _duplicated_jobs(num_types=2, per_type=2)
        matrix = build_throughput_matrix(jobs, oracle)
        problem = PolicyProblem(
            jobs={job.job_id: job for job in jobs},
            throughputs=matrix,
            cluster_spec=cluster,
        )
        aggregated_policy = make_policy("max_min_fairness", aggregation="type")
        session = aggregated_policy.session(problem)
        assert isinstance(session, AggregatedSession)
        # The per-job default is unchanged.
        assert not isinstance(make_policy("max_min_fairness").session(problem),
                              AggregatedSession)
        # compute_allocation routes through the dispatcher too.
        allocation = aggregated_policy.compute_allocation(problem)
        allocation.validate(cluster)
