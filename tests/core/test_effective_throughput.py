"""Tests for effective throughput and its reference normalizers."""

import numpy as np
import pytest

from repro.cluster import ClusterSpec, default_registry
from repro.core import Allocation, ThroughputMatrix
from repro.core.effective_throughput import (
    effective_throughput,
    equal_share_reference_throughput,
    fastest_reference_throughput,
    isolated_reference_throughput,
)
from repro.exceptions import ConfigurationError


@pytest.fixture
def registry():
    return default_registry()


@pytest.fixture
def matrix(registry):
    return ThroughputMatrix(
        registry,
        {
            (0,): np.array([[4.0, 2.0, 1.0]]),
            (1,): np.array([[3.0, 2.0, 1.0]]),
            (0, 1): np.array([[2.0, 1.0, 0.5], [1.5, 1.0, 0.5]]),
        },
    )


class TestEffectiveThroughput:
    def test_single_row_only(self, registry, matrix):
        allocation = Allocation(
            registry,
            {
                (0,): np.array([0.5, 0.0, 0.0]),
                (1,): np.array([0.0, 0.0, 0.0]),
                (0, 1): np.array([0.0, 0.0, 0.0]),
            },
        )
        assert effective_throughput(matrix, allocation, 0) == pytest.approx(2.0)
        assert effective_throughput(matrix, allocation, 1) == pytest.approx(0.0)

    def test_pair_rows_contribute(self, registry, matrix):
        allocation = Allocation(
            registry,
            {
                (0,): np.array([0.0, 0.5, 0.0]),
                (1,): np.array([0.0, 0.0, 0.0]),
                (0, 1): np.array([0.4, 0.0, 0.0]),
            },
        )
        # 0.5 * 2.0 (alone on P100) + 0.4 * 2.0 (paired on V100).
        assert effective_throughput(matrix, allocation, 0) == pytest.approx(1.8)
        # Job 1 only runs in the pair row: 0.4 * 1.5.
        assert effective_throughput(matrix, allocation, 1) == pytest.approx(0.6)

    def test_mirrors_paper_definition_without_space_sharing(self, registry):
        """throughput(m, X) = sum_j T_mj X_mj for singleton-only matrices."""
        matrix = ThroughputMatrix(registry, {(0,): np.array([[4.0, 2.0, 1.0]])})
        allocation = Allocation(registry, {(0,): np.array([0.2, 0.3, 0.5])})
        expected = 4.0 * 0.2 + 2.0 * 0.3 + 1.0 * 0.5
        assert effective_throughput(matrix, allocation, 0) == pytest.approx(expected)


class TestReferences:
    def test_equal_share_weights_by_worker_counts(self, registry, matrix):
        spec = ClusterSpec.from_counts({"v100": 1, "p100": 0, "k80": 1}, registry=registry)
        # X^equal = [0.5, 0, 0.5]; throughput = 0.5*4 + 0.5*1 = 2.5.
        assert equal_share_reference_throughput(matrix, spec, 0) == pytest.approx(2.5)

    def test_equal_share_matches_paper_example_shape(self, registry, matrix):
        spec = ClusterSpec.from_counts({"v100": 2, "p100": 1, "k80": 1}, registry=registry)
        expected = (2 * 4.0 + 1 * 2.0 + 1 * 1.0) / 4
        assert equal_share_reference_throughput(matrix, spec, 0) == pytest.approx(expected)

    def test_isolated_divides_by_num_jobs(self, registry, matrix):
        spec = ClusterSpec.from_counts({"v100": 1, "p100": 1, "k80": 1}, registry=registry)
        four_jobs = isolated_reference_throughput(matrix, spec, 0, num_jobs=4)
        eight_jobs = isolated_reference_throughput(matrix, spec, 0, num_jobs=8)
        assert four_jobs > eight_jobs
        assert four_jobs == pytest.approx(2 * eight_jobs)

    def test_isolated_caps_total_time_fraction(self, registry, matrix):
        """With 1 job on a big cluster the fraction sum is capped at 1."""
        spec = ClusterSpec.from_counts({"v100": 10, "p100": 10, "k80": 10}, registry=registry)
        throughput = isolated_reference_throughput(matrix, spec, 0, num_jobs=1)
        # The best the job could do running 100% of the time is its average
        # over the (equally sized) pools — never more than its fastest type.
        assert throughput <= fastest_reference_throughput(matrix, 0) + 1e-9

    def test_isolated_scale_factor_reduces_time_share(self, registry, matrix):
        spec = ClusterSpec.from_counts({"v100": 4, "p100": 4, "k80": 4}, registry=registry)
        single = isolated_reference_throughput(matrix, spec, 0, num_jobs=4, scale_factor=1)
        distributed = isolated_reference_throughput(matrix, spec, 0, num_jobs=4, scale_factor=4)
        assert distributed < single

    def test_isolated_invalid_arguments(self, registry, matrix):
        spec = ClusterSpec.from_counts({"v100": 1}, registry=registry)
        with pytest.raises(ConfigurationError):
            isolated_reference_throughput(matrix, spec, 0, num_jobs=0)
        with pytest.raises(ConfigurationError):
            isolated_reference_throughput(matrix, spec, 0, num_jobs=1, scale_factor=0)

    def test_fastest_reference_is_row_max(self, matrix):
        assert fastest_reference_throughput(matrix, 0) == 4.0
        assert fastest_reference_throughput(matrix, 1) == 3.0
