"""Tests for the heterogeneity-aware LAS (max-min fairness) policy."""

import numpy as np
import pytest

from repro.cluster import ClusterSpec, default_registry
from repro.core import (
    MaxMinFairnessPolicy,
    PolicyProblem,
    ThroughputMatrix,
    effective_throughput,
    equal_share_reference_throughput,
)
from repro.workloads import Job


class TestWorkedExample:
    """The Section 4.1 worked example: T = [[4,1],[3,1],[2,1]], 1 V100 + 1 K80."""

    def test_matches_paper_allocation(self, worked_example_problem):
        allocation = MaxMinFairnessPolicy().compute_allocation(worked_example_problem)
        # Paper: X^het = [[0.45, 0.0], [0.45, 0.09], [0.09, 0.91]].
        assert allocation.value((0,), "v100") == pytest.approx(0.45, abs=0.02)
        assert allocation.value((0,), "k80") == pytest.approx(0.0, abs=0.02)
        assert allocation.value((1,), "v100") == pytest.approx(0.45, abs=0.02)
        assert allocation.value((1,), "k80") == pytest.approx(0.09, abs=0.02)
        assert allocation.value((2,), "v100") == pytest.approx(0.09, abs=0.02)
        assert allocation.value((2,), "k80") == pytest.approx(0.91, abs=0.02)

    def test_beats_isolated_allocation_by_ten_percent(self, worked_example_problem):
        """Paper: jobs receive ~10% higher throughput than the 1/n split."""
        problem = worked_example_problem
        matrix = problem.throughputs
        allocation = MaxMinFairnessPolicy().compute_allocation(problem)
        for job_id in problem.job_ids:
            achieved = effective_throughput(matrix, allocation, job_id)
            isolated = float(matrix.isolated_throughputs(job_id).sum()) / 3.0
            assert achieved >= isolated * 1.05

    def test_allocation_is_valid(self, worked_example_problem):
        allocation = MaxMinFairnessPolicy().compute_allocation(worked_example_problem)
        allocation.validate(worked_example_problem.cluster_spec)


class TestWeightsAndScaleFactors:
    def test_higher_weight_gets_higher_normalized_throughput(self, oracle, small_cluster):
        jobs = {
            0: Job(job_id=0, job_type="resnet50-bs64", total_steps=1e5, priority_weight=4.0),
            1: Job(job_id=1, job_type="resnet50-bs64", total_steps=1e5, priority_weight=1.0),
        }
        from repro.core import build_throughput_matrix

        matrix = build_throughput_matrix(list(jobs.values()), oracle)
        problem = PolicyProblem(jobs=jobs, throughputs=matrix, cluster_spec=small_cluster)
        allocation = MaxMinFairnessPolicy().compute_allocation(problem)
        heavy = effective_throughput(matrix, allocation, 0)
        light = effective_throughput(matrix, allocation, 1)
        assert heavy > 1.5 * light

    def test_equal_weights_equal_normalized_throughput(self, mixed_problem):
        policy = MaxMinFairnessPolicy()
        allocation = policy.compute_allocation(mixed_problem)
        matrix = mixed_problem.throughputs
        normalized = []
        for job_id in mixed_problem.job_ids:
            reference = equal_share_reference_throughput(
                matrix, mixed_problem.cluster_spec, job_id
            )
            normalized.append(effective_throughput(matrix, allocation, job_id) / reference)
        assert max(normalized) - min(normalized) <= max(normalized) * 0.35

    def test_multi_worker_job_respects_capacity(self, oracle):
        spec = ClusterSpec.from_counts({"v100": 4, "p100": 4, "k80": 4})
        from repro.core import build_throughput_matrix

        jobs = [
            Job(job_id=0, job_type="resnet50-bs64", total_steps=1e5, scale_factor=4),
            Job(job_id=1, job_type="lstm-bs20", total_steps=1e5, scale_factor=1),
        ]
        matrix = build_throughput_matrix(jobs, oracle)
        problem = PolicyProblem(
            jobs={job.job_id: job for job in jobs}, throughputs=matrix, cluster_spec=spec
        )
        allocation = MaxMinFairnessPolicy().compute_allocation(problem)
        allocation.validate(spec)
        usage = allocation.worker_usage()
        assert np.all(usage <= spec.counts_vector() + 1e-6)


class TestVariants:
    def test_heterogeneity_agnostic_ignores_speed_differences(self, mixed_problem):
        """The agnostic variant cannot give fast-GPU affinity to high-speedup jobs."""
        aware = MaxMinFairnessPolicy().compute_allocation(mixed_problem)
        agnostic = MaxMinFairnessPolicy(heterogeneity_agnostic=True).compute_allocation(
            mixed_problem
        )
        matrix = mixed_problem.throughputs
        total_aware = sum(
            effective_throughput(matrix, aware, job_id) / matrix.isolated_throughputs(job_id).max()
            for job_id in mixed_problem.job_ids
        )
        total_agnostic = sum(
            effective_throughput(matrix, agnostic, job_id)
            / matrix.isolated_throughputs(job_id).max()
            for job_id in mixed_problem.job_ids
        )
        assert total_aware >= total_agnostic - 1e-6

    def test_space_sharing_at_least_as_good(self, mixed_problem_ss):
        """Solutions with colocation are at least as good as without (Section 4.4)."""
        matrix = mixed_problem_ss.throughputs
        no_ss = MaxMinFairnessPolicy(space_sharing=False).compute_allocation(mixed_problem_ss)
        with_ss = MaxMinFairnessPolicy(space_sharing=True).compute_allocation(mixed_problem_ss)

        def min_normalized(allocation):
            values = []
            for job_id in mixed_problem_ss.job_ids:
                reference = equal_share_reference_throughput(
                    matrix, mixed_problem_ss.cluster_spec, job_id
                )
                values.append(effective_throughput(matrix, allocation, job_id) / reference)
            return min(values)

        assert min_normalized(with_ss) >= min_normalized(no_ss) - 1e-3

    def test_display_name_annotations(self):
        assert "het-agnostic" in MaxMinFairnessPolicy(heterogeneity_agnostic=True).display_name
        assert "+SS" in MaxMinFairnessPolicy(space_sharing=True).display_name
