"""Property tests for the dense pair block and columnar rows view.

Satellite guard for the vectorized-assembly PR: the dense pair block
(`ThroughputMatrix.pairs_matrix`) and the flattened rows view
(`ThroughputMatrix.dense_rows`) must agree with the per-row accessors
(`row`, `rows_containing`) — in particular on the *normalized combination
ordering* that `beneficial_pair_row` established (row position k holds the
throughputs of the k-th job of the sorted combination).
"""

import numpy as np
import pytest

from repro.core.throughput_matrix import ThroughputMatrix, build_throughput_matrix
from repro.exceptions import ConfigurationError, UnknownJobError
from repro.workloads import ColocationModel, ThroughputOracle, TraceGenerator
from repro.workloads.colocation import beneficial_pair_row


@pytest.fixture(scope="module")
def oracle():
    return ThroughputOracle()


def _random_matrix(oracle, seed, num_jobs=14, threshold=1.1):
    trace = TraceGenerator(oracle).generate_static(num_jobs=num_jobs, seed=seed)
    return build_throughput_matrix(
        list(trace.jobs), oracle, space_sharing=True, colocation_threshold=threshold
    ), list(trace.jobs)


class TestPairBlock:
    @pytest.mark.parametrize("seed", range(6))
    def test_block_matches_row_accessor_on_random_traces(self, oracle, seed):
        matrix, _jobs = _random_matrix(oracle, seed)
        pair_ids, block = matrix.pairs_matrix()
        pairs = [c for c in matrix.combinations if len(c) == 2]
        assert list(pair_ids) == pairs  # sorted, complete
        for index, combination in enumerate(pair_ids):
            assert np.array_equal(block[index], matrix.row(combination))
            assert matrix.pair_index(combination) == index
            # Normalization: querying in reversed order hits the same row.
            assert matrix.pair_index(tuple(reversed(combination))) == index

    @pytest.mark.parametrize("seed", range(3))
    def test_block_ordering_agrees_with_beneficial_pair_row(self, oracle, seed):
        """Row position k holds the throughputs of sorted-combination job k."""
        matrix, jobs = _random_matrix(oracle, seed)
        model = ColocationModel(oracle)
        by_id = {job.job_id: job for job in jobs}
        pair_ids, block = matrix.pairs_matrix()
        for index, (first, second) in enumerate(pair_ids):
            assert first < second
            expected = beneficial_pair_row(
                model,
                by_id[first].job_type,
                by_id[second].job_type,
                oracle.registry.names,
                threshold=1.1,
            )
            assert expected is not None
            assert np.array_equal(block[index], expected)

    def test_pair_index_unknown_combination(self, oracle):
        matrix, _ = _random_matrix(oracle, seed=0)
        with pytest.raises(UnknownJobError):
            matrix.pair_index((999_998, 999_999))

    def test_from_parts_rejects_unnormalized_pairs(self, oracle):
        matrix, _ = _random_matrix(oracle, seed=1)
        job_ids, singles = matrix.singles_matrix()
        pair_ids, block = matrix.pairs_matrix()
        if not pair_ids:
            pytest.skip("trace produced no beneficial pairs")
        bad = {tuple(reversed(pair_ids[0])): block[0]}
        with pytest.raises(ConfigurationError):
            ThroughputMatrix.from_parts(matrix.registry, job_ids, singles, bad)


class TestDenseRows:
    @pytest.mark.parametrize("seed", range(4))
    def test_dense_rows_matches_per_row_accessors(self, oracle, seed):
        matrix, _ = _random_matrix(oracle, seed)
        dense = matrix.dense_rows()
        assert dense.combinations == matrix.combinations
        for ordinal, combination in enumerate(dense.combinations):
            start, end = dense.offsets[ordinal], dense.offsets[ordinal + 1]
            assert end - start == len(combination)
            assert np.array_equal(dense.values[start:end], matrix.row(combination))
            assert tuple(dense.member_jobs[start:end]) == combination
            expected_runnable = (matrix.row(combination) > 0).any(axis=0)
            assert np.array_equal(dense.runnable[ordinal], expected_runnable)

    @pytest.mark.parametrize("seed", range(4))
    def test_member_grouping_matches_rows_containing(self, oracle, seed):
        matrix, _ = _random_matrix(oracle, seed)
        dense = matrix.dense_rows()
        for position, job_id in enumerate(dense.job_ids.tolist()):
            members = dense.members_by_job[
                dense.job_starts[position] : dense.job_starts[position + 1]
            ]
            grouped = [
                (dense.combinations[dense.member_rows[m]], int(m - dense.offsets[dense.member_rows[m]]))
                for m in members
            ]
            assert grouped == list(matrix.rows_containing(job_id))

    def test_transformed_matrices_expose_consistent_blocks(self, oracle):
        matrix, _ = _random_matrix(oracle, seed=2)
        for transformed in (matrix.heterogeneity_agnostic(), matrix.restrict_to_singletons()):
            dense = transformed.dense_rows()
            for ordinal, combination in enumerate(dense.combinations):
                start, end = dense.offsets[ordinal], dense.offsets[ordinal + 1]
                assert np.array_equal(dense.values[start:end], transformed.row(combination))
