"""Property-based tests for the proportional-split recovery.

The split is the load-bearing piece of type aggregation: whatever the inner
LP hands back per group must be divided among members without creating or
destroying allocation mass.  Hypothesis pins the three properties the
expansion relies on: conservation (shares sum to the group total),
permutation invariance over member ids, and degeneration to the per-job
identity when every group is a singleton.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core import proportional_split, weighted_member_split

_totals = st.floats(
    min_value=0.0, max_value=64.0, allow_nan=False, allow_infinity=False
)
_weights = st.lists(
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=12,
)
_member_ids = st.lists(
    st.integers(min_value=0, max_value=10_000), min_size=1, max_size=12, unique=True
)


class TestProportionalSplit:
    @given(total=_totals, weights=_weights)
    @settings(max_examples=200)
    def test_conserves_group_total(self, total, weights):
        shares = proportional_split(total, weights)
        assert len(shares) == len(weights)
        assert all(share >= 0.0 for share in shares)
        np.testing.assert_allclose(sum(shares), total, atol=1e-9 * max(1.0, total))

    @given(total=_totals, weights=_weights, seed=st.integers(0, 2**16))
    @settings(max_examples=200)
    def test_equivariant_under_member_permutation(self, total, weights, seed):
        # Shuffling the members shuffles the shares identically: no member's
        # share depends on its position (hence not on its job id either).
        order = np.random.default_rng(seed).permutation(len(weights))
        shares = proportional_split(total, weights)
        permuted = proportional_split(total, [weights[i] for i in order])
        np.testing.assert_allclose(permuted, [shares[i] for i in order], atol=1e-12)

    @given(total=_totals, weights=_weights)
    @settings(max_examples=100)
    def test_zero_mass_falls_back_to_equal_split(self, total, weights):
        zero = [0.0] * len(weights)
        shares = proportional_split(total, zero)
        np.testing.assert_allclose(shares, np.full(len(zero), total / len(zero)))


class TestWeightedMemberSplit:
    @given(total=_totals, member_ids=_member_ids, seed=st.integers(0, 2**16))
    @settings(max_examples=200)
    def test_job_id_permutation_invariance(self, total, member_ids, seed):
        # Equal-weight splits must not care which job ids name the members.
        shuffled = list(member_ids)
        np.random.default_rng(seed).shuffle(shuffled)
        original = weighted_member_split(total, member_ids, None)
        renamed = weighted_member_split(total, shuffled, None)
        assert set(original) == set(renamed)
        for job_id in member_ids:
            np.testing.assert_allclose(original[job_id], renamed[job_id], atol=1e-12)

    @given(total=_totals, member_ids=_member_ids)
    @settings(max_examples=200)
    def test_singleton_groups_degenerate_to_per_job(self, total, member_ids):
        # All groups of size 1: each member receives the group total verbatim,
        # i.e. aggregation is the identity on an all-distinct-type problem.
        for job_id in member_ids:
            shares = weighted_member_split(total, [job_id], None)
            assert shares == {job_id: total}

    @given(total=_totals, member_ids=_member_ids)
    @settings(max_examples=100)
    def test_weighted_shares_conserve_total(self, total, member_ids):
        weights = {job_id: float(1 + (job_id % 5)) for job_id in member_ids}
        shares = weighted_member_split(total, member_ids, weights)
        np.testing.assert_allclose(
            sum(shares.values()), total, atol=1e-9 * max(1.0, total)
        )
