"""Property-based tests for the proportional-split recovery.

The split is the load-bearing piece of type aggregation: whatever the inner
LP hands back per group must be divided among members without creating or
destroying allocation mass.  Hypothesis pins the three properties the
expansion relies on: conservation (shares sum to the group total),
permutation invariance over member ids, and degeneration to the per-job
identity when every group is a singleton.

``TestGroupedLevelSplit`` lifts the same three properties to the aggregated
*water-filling* path, where the level loop runs over group representatives:
group totals are conserved by the equal split, the sorted level profile is
invariant under job-id relabelling, and an all-singleton grouping reproduces
the per-job level loop.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.cluster import ClusterSpec
from repro.core import (
    AggregatedProblem,
    PolicyProblem,
    make_policy,
    proportional_split,
    weighted_member_split,
)
from repro.core.throughput_matrix import build_throughput_matrix
from repro.harness.equivalence import LEVEL_PROFILE_TOL, water_filling_level_profile
from repro.workloads import Job, ThroughputOracle

_totals = st.floats(
    min_value=0.0, max_value=64.0, allow_nan=False, allow_infinity=False
)
_weights = st.lists(
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=12,
)
_member_ids = st.lists(
    st.integers(min_value=0, max_value=10_000), min_size=1, max_size=12, unique=True
)


class TestProportionalSplit:
    @given(total=_totals, weights=_weights)
    @settings(max_examples=200)
    def test_conserves_group_total(self, total, weights):
        shares = proportional_split(total, weights)
        assert len(shares) == len(weights)
        assert all(share >= 0.0 for share in shares)
        np.testing.assert_allclose(sum(shares), total, atol=1e-9 * max(1.0, total))

    @given(total=_totals, weights=_weights, seed=st.integers(0, 2**16))
    @settings(max_examples=200)
    def test_equivariant_under_member_permutation(self, total, weights, seed):
        # Shuffling the members shuffles the shares identically: no member's
        # share depends on its position (hence not on its job id either).
        order = np.random.default_rng(seed).permutation(len(weights))
        shares = proportional_split(total, weights)
        permuted = proportional_split(total, [weights[i] for i in order])
        np.testing.assert_allclose(permuted, [shares[i] for i in order], atol=1e-12)

    @given(total=_totals, weights=_weights)
    @settings(max_examples=100)
    def test_zero_mass_falls_back_to_equal_split(self, total, weights):
        zero = [0.0] * len(weights)
        shares = proportional_split(total, zero)
        np.testing.assert_allclose(shares, np.full(len(zero), total / len(zero)))


class TestWeightedMemberSplit:
    @given(total=_totals, member_ids=_member_ids, seed=st.integers(0, 2**16))
    @settings(max_examples=200)
    def test_job_id_permutation_invariance(self, total, member_ids, seed):
        # Equal-weight splits must not care which job ids name the members.
        shuffled = list(member_ids)
        np.random.default_rng(seed).shuffle(shuffled)
        original = weighted_member_split(total, member_ids, None)
        renamed = weighted_member_split(total, shuffled, None)
        assert set(original) == set(renamed)
        for job_id in member_ids:
            np.testing.assert_allclose(original[job_id], renamed[job_id], atol=1e-12)

    @given(total=_totals, member_ids=_member_ids)
    @settings(max_examples=200)
    def test_singleton_groups_degenerate_to_per_job(self, total, member_ids):
        # All groups of size 1: each member receives the group total verbatim,
        # i.e. aggregation is the identity on an all-distinct-type problem.
        for job_id in member_ids:
            shares = weighted_member_split(total, [job_id], None)
            assert shares == {job_id: total}

    @given(total=_totals, member_ids=_member_ids)
    @settings(max_examples=100)
    def test_weighted_shares_conserve_total(self, total, member_ids):
        weights = {job_id: float(1 + (job_id % 5)) for job_id in member_ids}
        shares = weighted_member_split(total, member_ids, weights)
        np.testing.assert_allclose(
            sum(shares.values()), total, atol=1e-9 * max(1.0, total)
        )


_ORACLE = ThroughputOracle()
_CLUSTER = ClusterSpec.from_counts(
    {"v100": 2, "p100": 2, "k80": 2}, registry=_ORACLE.registry
)
_JOB_TYPES = ("resnet50-bs16", "a3c-bs4", "lstm-bs10")

#: Per-type member counts: 1-3 types with 1-4 interchangeable jobs each.
_group_counts = st.lists(st.integers(min_value=1, max_value=4), min_size=1, max_size=3)


def _grouped_problem(counts, job_ids=None):
    """A per-job problem with ``counts[i]`` jobs of the i-th type."""
    total = sum(counts)
    ids = list(range(total)) if job_ids is None else list(job_ids)
    jobs = []
    position = 0
    for type_index, count in enumerate(counts):
        for _ in range(count):
            jobs.append(
                Job(
                    job_id=ids[position],
                    job_type=_JOB_TYPES[type_index],
                    total_steps=1000.0,
                )
            )
            position += 1
    matrix = build_throughput_matrix(jobs, _ORACLE)
    return PolicyProblem(
        jobs={job.job_id: job for job in jobs},
        throughputs=matrix,
        cluster_spec=_CLUSTER,
    )


class TestGroupedLevelSplit:
    """The aggregated water-filling level loop + equal split, property-tested."""

    @given(counts=_group_counts)
    @settings(max_examples=10, deadline=None)
    def test_allocation_mass_conserved_per_group(self, counts):
        problem = _grouped_problem(counts)
        policy = make_policy("max_min_fairness_water_filling", aggregation="type")
        view = AggregatedProblem.build(problem, key=policy.aggregation_group_key)
        aggregated = make_policy("max_min_fairness_water_filling").compute_allocation(
            view.problem
        )
        expanded = view.expand(aggregated)
        expanded.validate(_CLUSTER)
        for key, members in view.groups.items():
            rep = view.representatives[key]
            totals = [expanded.job_total(member) for member in members]
            # Equal split inside the group, conserving the group total.
            np.testing.assert_allclose(
                totals, np.full(len(totals), totals[0]), atol=1e-9
            )
            np.testing.assert_allclose(
                sum(totals), aggregated.job_total(rep), atol=1e-6
            )

    @given(counts=_group_counts, seed=st.integers(0, 2**16))
    @settings(max_examples=10, deadline=None)
    def test_sorted_level_profile_invariant_under_job_id_relabelling(
        self, counts, seed
    ):
        total = sum(counts)
        relabelled = (np.random.default_rng(seed).permutation(total) * 7 + 3).tolist()
        policy = make_policy("max_min_fairness_water_filling", aggregation="type")
        profiles = []
        for ids in (None, relabelled):
            problem = _grouped_problem(counts, job_ids=ids)
            allocation = policy.session(problem).solve(problem)
            profiles.append(water_filling_level_profile(policy, problem, allocation))
        np.testing.assert_allclose(
            profiles[0], profiles[1], atol=LEVEL_PROFILE_TOL, rtol=LEVEL_PROFILE_TOL
        )

    @given(num_types=st.integers(min_value=1, max_value=3))
    @settings(max_examples=6, deadline=None)
    def test_singleton_groups_degenerate_to_per_job_path(self, num_types):
        problem = _grouped_problem([1] * num_types)
        aggregated_policy = make_policy(
            "max_min_fairness_water_filling", aggregation="type"
        )
        per_job_policy = make_policy("max_min_fairness_water_filling")
        aggregated = aggregated_policy.session(problem).solve(problem)
        per_job = per_job_policy.compute_allocation(problem)
        # All-singleton groups make aggregation the identity: both paths walk
        # the same deterministic level trajectory over identical programs.
        for combination in set(aggregated.combinations) | set(per_job.combinations):
            aggregated_row = (
                aggregated.row(combination)
                if aggregated.has_row(combination)
                else np.zeros(len(_ORACLE.registry))
            )
            per_job_row = (
                per_job.row(combination)
                if per_job.has_row(combination)
                else np.zeros(len(_ORACLE.registry))
            )
            np.testing.assert_allclose(aggregated_row, per_job_row, atol=1e-6)
