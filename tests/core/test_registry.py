"""Tests for the policy registry."""

import pytest

from repro.core import Policy, available_policies, make_policy
from repro.exceptions import ConfigurationError


class TestRegistry:
    def test_all_listed_policies_instantiate(self):
        for name in available_policies():
            policy = make_policy(name)
            assert isinstance(policy, Policy)

    def test_table1_policies_present(self):
        """Every policy class from Table 1 has a registry entry."""
        names = set(available_policies())
        for required in (
            "max_min_fairness",
            "fifo",
            "makespan",
            "finish_time_fairness",
            "shortest_job_first",
            "min_cost",
            "min_cost_slo",
            "max_min_fairness_water_filling",
        ):
            assert required in names

    def test_baselines_present(self):
        names = set(available_policies())
        assert {"gandiva", "allox", "isolated"} <= names

    def test_agnostic_variants_flagged(self):
        assert make_policy("max_min_fairness_agnostic").heterogeneity_agnostic
        assert not make_policy("max_min_fairness").heterogeneity_agnostic

    def test_space_sharing_variants_flagged(self):
        assert make_policy("max_min_fairness_ss").space_sharing
        assert not make_policy("max_min_fairness").space_sharing

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigurationError):
            make_policy("round_robin")

    def test_each_call_returns_fresh_instance(self):
        assert make_policy("fifo") is not make_policy("fifo")

    def test_available_policies_sorted(self):
        names = available_policies()
        assert names == sorted(names)
