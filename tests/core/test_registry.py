"""Tests for the policy registry."""

import pytest

from repro.core import Policy, available_policies, make_policy
from repro.exceptions import ConfigurationError


class TestRegistry:
    def test_all_listed_policies_instantiate(self):
        for name in available_policies():
            policy = make_policy(name)
            assert isinstance(policy, Policy)

    def test_table1_policies_present(self):
        """Every policy class from Table 1 has a registry entry."""
        names = set(available_policies())
        for required in (
            "max_min_fairness",
            "fifo",
            "makespan",
            "finish_time_fairness",
            "shortest_job_first",
            "min_cost",
            "min_cost_slo",
            "max_min_fairness_water_filling",
        ):
            assert required in names

    def test_baselines_present(self):
        names = set(available_policies())
        assert {"gandiva", "allox", "isolated"} <= names

    def test_agnostic_variants_flagged(self):
        assert make_policy("max_min_fairness_agnostic").heterogeneity_agnostic
        assert not make_policy("max_min_fairness").heterogeneity_agnostic

    def test_space_sharing_variants_flagged(self):
        assert make_policy("max_min_fairness_ss").space_sharing
        assert not make_policy("max_min_fairness").space_sharing

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigurationError):
            make_policy("round_robin")

    def test_each_call_returns_fresh_instance(self):
        assert make_policy("fifo") is not make_policy("fifo")

    def test_available_policies_sorted(self):
        names = available_policies()
        assert names == sorted(names)


class TestPolicySpecs:
    """Spec-string parsing and parameterized construction."""

    def test_parse_base_name(self):
        from repro.core import parse_policy_spec

        assert parse_policy_spec("fifo") == ("fifo", {})

    def test_parse_ss_modifier(self):
        from repro.core import parse_policy_spec

        assert parse_policy_spec("max_min_fairness+ss") == (
            "max_min_fairness",
            {"space_sharing": True},
        )

    def test_parse_agnostic_modifier(self):
        from repro.core import parse_policy_spec

        assert parse_policy_spec("fifo@agnostic") == (
            "fifo",
            {"heterogeneity_agnostic": True},
        )

    def test_parse_combined_modifiers(self):
        from repro.core import parse_policy_spec

        base, options = parse_policy_spec("fifo+ss@agnostic")
        assert base == "fifo"
        assert options == {"space_sharing": True, "heterogeneity_agnostic": True}

    def test_parse_aware_is_default(self):
        from repro.core import parse_policy_spec

        assert parse_policy_spec("fifo@aware") == ("fifo", {"heterogeneity_agnostic": False})

    def test_aliases_parse_like_specs(self):
        from repro.core import parse_policy_spec

        assert parse_policy_spec("max_min_fairness_ss") == parse_policy_spec(
            "max_min_fairness+ss"
        )
        assert parse_policy_spec("fifo_agnostic") == parse_policy_spec("fifo@agnostic")

    def test_make_policy_from_spec_string(self):
        policy = make_policy("max_min_fairness+ss")
        assert policy.space_sharing and not policy.heterogeneity_agnostic
        policy = make_policy("makespan+ss@agnostic")
        assert policy.space_sharing and policy.heterogeneity_agnostic

    def test_spec_and_alias_build_equivalent_policies(self):
        via_alias = make_policy("max_min_fairness_ss")
        via_spec = make_policy("max_min_fairness+ss")
        assert type(via_alias) is type(via_spec)
        assert via_alias.space_sharing == via_spec.space_sharing
        assert via_alias.display_name == via_spec.display_name

    def test_keyword_options_forwarded(self):
        policy = make_policy("gandiva", packing_trials=7)
        assert policy._packing_trials == 7

    def test_keyword_options_override_spec(self):
        policy = make_policy("fifo+ss", space_sharing=False)
        assert not policy.space_sharing

    def test_unknown_modifier_raises(self):
        with pytest.raises(ConfigurationError):
            make_policy("fifo+turbo")
        with pytest.raises(ConfigurationError):
            make_policy("fifo@quantum")

    def test_malformed_specs_raise(self):
        for bad in ("", "+ss", "@agnostic", "fifo+", "fifo@"):
            with pytest.raises(ConfigurationError):
                make_policy(bad)

    def test_unsupported_option_raises(self):
        with pytest.raises(ConfigurationError):
            make_policy("isolated", packing_trials=3)

    def test_unknown_base_in_spec_raises(self):
        with pytest.raises(ConfigurationError):
            make_policy("round_robin+ss")


class TestSessionClasses:
    """Each LP/feasibility policy hands out its registered session type."""

    def test_policy_sessions_use_registered_classes(self):
        from repro.cluster import ClusterSpec
        from repro.core import AllocationEngine, PolicyProblem
        from repro.core.finish_time_fairness import FinishTimeFairnessSession
        from repro.core.makespan import MakespanSession
        from repro.core.max_min_fairness import MaxMinFairnessSession
        from repro.core.min_cost import MinCostSession, MinCostWithSLOsSession
        from repro.workloads import ThroughputOracle, TraceGenerator

        expected = {
            "max_min_fairness": MaxMinFairnessSession,
            "makespan": MakespanSession,
            "finish_time_fairness": FinishTimeFairnessSession,
            "min_cost": MinCostSession,
            "min_cost_slo": MinCostWithSLOsSession,
        }
        oracle = ThroughputOracle()
        cluster = ClusterSpec.from_counts(
            {name: 2 for name in oracle.registry.names}, registry=oracle.registry
        )
        trace = TraceGenerator(oracle=oracle).generate_static(num_jobs=3, seed=7)
        jobs = {job.job_id: job for job in trace.jobs}
        for spec, session_class in expected.items():
            policy = make_policy(spec)
            engine = AllocationEngine(oracle, space_sharing=policy.space_sharing)
            for job in trace.jobs:
                engine.add_job(job)
            problem = PolicyProblem(
                jobs=jobs,
                throughputs=engine.matrix(),
                cluster_spec=cluster,
                steps_remaining={job_id: job.total_steps for job_id, job in jobs.items()},
                time_elapsed={job_id: 0.0 for job_id in jobs},
                current_time=0.0,
            )
            session = policy.session(problem)
            assert isinstance(session, session_class), spec
