"""Tests for the incremental allocation engine and its colocation cache."""

import numpy as np
import pytest

from repro.core import AllocationEngine, PairThroughputCache, build_throughput_matrix
from repro.exceptions import ConfigurationError, UnknownJobError
from repro.workloads import ColocationModel, Job, ThroughputOracle, TraceGenerator


@pytest.fixture(scope="module")
def oracle():
    return ThroughputOracle()


@pytest.fixture(scope="module")
def model(oracle):
    return ColocationModel(oracle)


def _jobs(oracle, num_jobs, seed=0):
    trace = TraceGenerator(oracle=oracle).generate_static(num_jobs=num_jobs, seed=seed)
    return list(trace.jobs)


def _assert_matrices_equal(incremental, reference):
    assert incremental.combinations == reference.combinations
    for combination in reference.combinations:
        np.testing.assert_allclose(
            incremental.row(combination), reference.row(combination)
        )


class TestIncrementalEquivalence:
    @pytest.mark.parametrize("space_sharing", [False, True])
    def test_matches_from_scratch_after_arrivals(self, oracle, space_sharing):
        jobs = _jobs(oracle, 12)
        engine = AllocationEngine(oracle, space_sharing=space_sharing)
        for i, job in enumerate(jobs):
            engine.add_job(job)
            reference = build_throughput_matrix(
                jobs[: i + 1], oracle, space_sharing=space_sharing
            )
            _assert_matrices_equal(engine.matrix(), reference)

    @pytest.mark.parametrize("space_sharing", [False, True])
    def test_matches_from_scratch_after_completions(self, oracle, space_sharing):
        jobs = _jobs(oracle, 12)
        engine = AllocationEngine(oracle, space_sharing=space_sharing)
        engine.add_jobs(jobs)
        remaining = {job.job_id: job for job in jobs}
        for job in jobs[:-1]:
            engine.remove_job(job.job_id)
            del remaining[job.job_id]
            reference = build_throughput_matrix(
                list(remaining.values()), oracle, space_sharing=space_sharing
            )
            _assert_matrices_equal(engine.matrix(), reference)

    def test_matches_under_interleaved_churn(self, oracle):
        jobs = _jobs(oracle, 30, seed=7)
        engine = AllocationEngine(oracle, space_sharing=True)
        active = {}
        rng = np.random.default_rng(1)
        for i, job in enumerate(jobs):
            engine.add_job(job)
            active[job.job_id] = job
            if i % 3 == 2 and len(active) > 2:
                victim = int(rng.choice(sorted(active)))
                engine.remove_job(victim)
                del active[victim]
            reference = build_throughput_matrix(
                list(active.values()), oracle, space_sharing=True
            )
            _assert_matrices_equal(engine.matrix(), reference)

    def test_multi_worker_jobs_get_no_pair_rows(self, oracle):
        jobs = [
            Job(job_id=0, job_type="resnet50-bs64", total_steps=1000.0),
            Job(job_id=1, job_type="a3c-bs4", total_steps=1000.0, scale_factor=4),
            Job(job_id=2, job_type="a3c-bs4", total_steps=1000.0),
        ]
        engine = AllocationEngine(oracle, space_sharing=True)
        engine.add_jobs(jobs)
        reference = build_throughput_matrix(jobs, oracle, space_sharing=True)
        _assert_matrices_equal(engine.matrix(), reference)
        for combination in engine.matrix().combinations:
            assert 1 not in combination or combination == (1,)

    def test_custom_threshold_respected(self, oracle, model):
        jobs = _jobs(oracle, 10)
        engine = AllocationEngine(
            oracle, space_sharing=True, colocation_model=model, colocation_threshold=1.5
        )
        engine.add_jobs(jobs)
        reference = build_throughput_matrix(
            jobs, oracle, space_sharing=True, colocation_model=model, colocation_threshold=1.5
        )
        _assert_matrices_equal(engine.matrix(), reference)


class TestEngineBookkeeping:
    def test_duplicate_add_rejected(self, oracle):
        engine = AllocationEngine(oracle)
        job = Job(job_id=0, job_type="resnet50-bs64", total_steps=100.0)
        engine.add_job(job)
        with pytest.raises(ConfigurationError):
            engine.add_job(job)

    def test_remove_unknown_rejected(self, oracle):
        engine = AllocationEngine(oracle)
        with pytest.raises(UnknownJobError):
            engine.remove_job(7)

    def test_empty_matrix_rejected(self, oracle):
        engine = AllocationEngine(oracle)
        with pytest.raises(ConfigurationError):
            engine.matrix()
        job = Job(job_id=0, job_type="resnet50-bs64", total_steps=100.0)
        engine.add_job(job)
        engine.matrix()
        engine.remove_job(0)
        with pytest.raises(ConfigurationError):
            engine.matrix()

    def test_membership_and_len(self, oracle):
        engine = AllocationEngine(oracle)
        jobs = _jobs(oracle, 4)
        engine.add_jobs(jobs)
        assert len(engine) == 4
        assert jobs[0].job_id in engine
        engine.remove_job(jobs[0].job_id)
        assert jobs[0].job_id not in engine
        assert engine.job_ids == tuple(sorted(j.job_id for j in jobs[1:]))

    def test_matrix_memoized_until_next_event(self, oracle):
        engine = AllocationEngine(oracle)
        jobs = _jobs(oracle, 3)
        engine.add_jobs(jobs)
        first = engine.matrix()
        assert engine.matrix() is first
        engine.remove_job(jobs[0].job_id)
        assert engine.matrix() is not first


class TestPairThroughputCache:
    def test_rows_memoized_at_type_level(self, oracle, model):
        cache = PairThroughputCache(model, tuple(oracle.registry.names))
        row_one = cache.row("resnet50-bs64", "a3c-bs4")
        row_two = cache.row("resnet50-bs64", "a3c-bs4")
        assert cache.misses == 1 and cache.hits == 1
        if row_one is not None:
            np.testing.assert_allclose(row_one, row_two)

    def test_flipped_query_reuses_entry_and_swaps_rows(self, oracle, model):
        cache = PairThroughputCache(model, tuple(oracle.registry.names))
        forward = cache.row("resnet50-bs64", "a3c-bs4")
        backward = cache.row("a3c-bs4", "resnet50-bs64")
        assert cache.misses == 1 and cache.hits == 1
        assert forward is not None and backward is not None
        np.testing.assert_allclose(forward[0], backward[1])
        np.testing.assert_allclose(forward[1], backward[0])

    def test_invalidate_clears_entries(self, oracle, model):
        cache = PairThroughputCache(model, tuple(oracle.registry.names))
        cache.row("resnet50-bs64", "a3c-bs4")
        assert len(cache) == 1
        cache.invalidate()
        assert len(cache) == 0
        cache.row("resnet50-bs64", "a3c-bs4")
        assert cache.misses == 2

    def test_observe_refreshes_cached_pair_rows(self, oracle):
        """Estimator refinements must reach allocations computed after observe()."""
        from repro.estimator.estimator import ThroughputEstimator
        from repro.workloads import ColocatedThroughputs

        estimator = ThroughputEstimator(ColocationModel(oracle))
        jobs = [
            Job(job_id=0, job_type="resnet50-bs64", total_steps=100.0),
            Job(job_id=1, job_type="a3c-bs4", total_steps=100.0),
        ]
        engine = AllocationEngine(oracle, space_sharing=True, colocation_model=estimator)
        engine.add_jobs(jobs)
        before = engine.matrix()
        assert engine.matrix() is before  # unchanged version stays memoized

        isolated_a = oracle.throughput("resnet50-bs64", "v100")
        isolated_b = oracle.throughput("a3c-bs4", "v100")
        estimator.observe(
            "resnet50-bs64",
            "a3c-bs4",
            "v100",
            ColocatedThroughputs(first=0.9 * isolated_a, second=0.9 * isolated_b),
        )
        after = engine.matrix()
        assert after is not before
        reference = build_throughput_matrix(
            jobs, oracle, space_sharing=True, colocation_model=estimator
        )
        _assert_matrices_equal(after, reference)

    def test_observe_then_arrival_still_refreshes_existing_pairs(self, oracle):
        """An arrival between observe() and matrix() must not strand stale rows."""
        from repro.estimator.estimator import ThroughputEstimator
        from repro.workloads import ColocatedThroughputs

        estimator = ThroughputEstimator(ColocationModel(oracle))
        jobs = [
            Job(job_id=0, job_type="resnet50-bs64", total_steps=100.0),
            Job(job_id=1, job_type="a3c-bs4", total_steps=100.0),
        ]
        engine = AllocationEngine(oracle, space_sharing=True, colocation_model=estimator)
        engine.add_jobs(jobs)
        engine.matrix()

        # Refinement makes the (0, 1) pair worthless...
        estimator.observe(
            "resnet50-bs64",
            "a3c-bs4",
            "v100",
            ColocatedThroughputs(first=0.0, second=0.0),
        )
        # ...and a new job arrives before the next allocation recomputation.
        newcomer = Job(job_id=2, job_type="lstm-bs20", total_steps=100.0)
        engine.add_job(newcomer)
        reference = build_throughput_matrix(
            jobs + [newcomer], oracle, space_sharing=True, colocation_model=estimator
        )
        _assert_matrices_equal(engine.matrix(), reference)

    def test_cache_row_mutation_does_not_corrupt_cache(self, oracle, model):
        """row() returns copies; mutating a returned row must not poison later hits."""
        cache = PairThroughputCache(model, tuple(oracle.registry.names))
        first = cache.row("resnet50-bs64", "a3c-bs4")
        assert first is not None
        pristine = first.copy()
        first[:] = -1.0
        np.testing.assert_allclose(cache.row("resnet50-bs64", "a3c-bs4"), pristine)

    def test_engine_reuses_cache_across_jobs_of_same_type(self, oracle, model):
        jobs = [
            Job(job_id=i, job_type="resnet50-bs64" if i % 2 == 0 else "a3c-bs4", total_steps=100.0)
            for i in range(8)
        ]
        engine = AllocationEngine(oracle, space_sharing=True, colocation_model=model)
        engine.add_jobs(jobs)
        cache = engine.colocation_cache
        # 8 jobs of 2 types -> 28 job pairs but only 3 distinct type pairs.
        assert cache.misses == 3
        assert cache.hits == 28 - 3
