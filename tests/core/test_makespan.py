"""Tests for the minimum-makespan policy."""

import numpy as np
import pytest

from repro.cluster import ClusterSpec, default_registry
from repro.core import (
    MakespanPolicy,
    MaxMinFairnessPolicy,
    PolicyProblem,
    ThroughputMatrix,
    build_throughput_matrix,
    effective_throughput,
)
from repro.workloads import Job


def _makespan_of(problem, allocation):
    matrix = problem.throughputs
    return max(
        problem.remaining_steps(job_id) / max(effective_throughput(matrix, allocation, job_id), 1e-12)
        for job_id in problem.job_ids
    )


class TestMakespan:
    def test_single_job_runs_on_fastest_accelerator(self, registry):
        matrix = ThroughputMatrix(registry, {(0,): np.array([[4.0, 2.0, 1.0]])})
        spec = ClusterSpec.from_counts({"v100": 1, "p100": 1, "k80": 1}, registry=registry)
        problem = PolicyProblem(
            jobs={0: Job(job_id=0, job_type="x", total_steps=1000.0)},
            throughputs=matrix,
            cluster_spec=spec,
        )
        allocation = MakespanPolicy().compute_allocation(problem)
        makespan = _makespan_of(problem, allocation)
        assert makespan == pytest.approx(1000.0 / 4.0, rel=0.05)

    def test_identical_jobs_split_the_cluster(self, registry):
        matrix = ThroughputMatrix(
            registry,
            {
                (0,): np.array([[2.0, 1.0, 0.5]]),
                (1,): np.array([[2.0, 1.0, 0.5]]),
            },
        )
        spec = ClusterSpec.from_counts({"v100": 1, "p100": 1, "k80": 1}, registry=registry)
        jobs = {i: Job(job_id=i, job_type="x", total_steps=1000.0) for i in range(2)}
        problem = PolicyProblem(jobs=jobs, throughputs=matrix, cluster_spec=spec)
        allocation = MakespanPolicy().compute_allocation(problem)
        makespans = [
            problem.remaining_steps(i) / effective_throughput(matrix, allocation, i)
            for i in range(2)
        ]
        assert makespans[0] == pytest.approx(makespans[1], rel=0.1)

    def test_beats_fair_sharing_on_makespan(self, oracle, small_cluster):
        jobs = [
            Job(job_id=0, job_type="resnet50-bs64", total_steps=5e5),
            Job(job_id=1, job_type="a3c-bs4", total_steps=5e4),
            Job(job_id=2, job_type="lstm-bs20", total_steps=2e5),
            Job(job_id=3, job_type="transformer-bs64", total_steps=3e5),
        ]
        matrix = build_throughput_matrix(jobs, oracle)
        problem = PolicyProblem(
            jobs={job.job_id: job for job in jobs},
            throughputs=matrix,
            cluster_spec=small_cluster,
        )
        makespan_allocation = MakespanPolicy().compute_allocation(problem)
        fair_allocation = MaxMinFairnessPolicy().compute_allocation(problem)
        assert _makespan_of(problem, makespan_allocation) <= _makespan_of(
            problem, fair_allocation
        ) * 1.05

    def test_respects_remaining_steps_override(self, oracle, registry):
        tiny = ClusterSpec.from_counts({"v100": 1, "p100": 0, "k80": 0}, registry=registry)
        jobs = [
            Job(job_id=0, job_type="resnet50-bs64", total_steps=1e6),
            Job(job_id=1, job_type="resnet50-bs64", total_steps=1e6),
        ]
        matrix = build_throughput_matrix(jobs, oracle)
        problem = PolicyProblem(
            jobs={job.job_id: job for job in jobs},
            throughputs=matrix,
            cluster_spec=tiny,
            steps_remaining={0: 1e6, 1: 10.0},
        )
        allocation = MakespanPolicy().compute_allocation(problem)
        # Job 1 is nearly finished, so job 0 should dominate the single V100.
        assert effective_throughput(matrix, allocation, 0) > effective_throughput(
            matrix, allocation, 1
        )

    def test_allocation_valid(self, mixed_problem):
        allocation = MakespanPolicy().compute_allocation(mixed_problem)
        allocation.validate(mixed_problem.cluster_spec)

    def test_agnostic_makespan_not_better_than_aware(self, mixed_problem):
        aware = MakespanPolicy().compute_allocation(mixed_problem)
        agnostic = MakespanPolicy(heterogeneity_agnostic=True).compute_allocation(mixed_problem)
        assert _makespan_of(mixed_problem, aware) <= _makespan_of(mixed_problem, agnostic) * 1.05

    def test_space_sharing_not_worse(self, mixed_problem_ss):
        plain = MakespanPolicy(space_sharing=False).compute_allocation(mixed_problem_ss)
        shared = MakespanPolicy(space_sharing=True).compute_allocation(mixed_problem_ss)
        assert _makespan_of(mixed_problem_ss, shared) <= _makespan_of(mixed_problem_ss, plain) * 1.05
