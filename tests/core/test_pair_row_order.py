"""Regression test: pair-row rebuilds must not follow set iteration order.

``_rebuild_pair_rows_for_types`` receives a ``frozenset`` of type names whose
iteration order depends on ``PYTHONHASHSEED``; before the fix, the pair-row
insertion sequence (and thus LP row order downstream) differed across
processes.  The rebuild must walk types in sorted order.
"""

import pytest

from repro.core import AllocationEngine
from repro.workloads import Job, ThroughputOracle


@pytest.fixture(scope="module")
def oracle():
    return ThroughputOracle()


def _engine_with_types(oracle, job_types):
    engine = AllocationEngine(oracle, space_sharing=True, aggregation="type")
    for job_id, job_type in enumerate(job_types):
        engine.add_job(
            Job(job_id=job_id, job_type=job_type, total_steps=1000, arrival_time=0.0)
        )
    return engine


def test_rebuild_walks_types_in_sorted_order(oracle):
    job_types = list(oracle.job_types.names)[:4]
    assert len(job_types) >= 3, "registry too small for a meaningful order test"
    engine = _engine_with_types(oracle, job_types)

    observed = []
    original = AllocationEngine._ensure_type_pair_row

    def recording(self, type_a, type_b):
        observed.append(type_a)
        return original(self, type_a, type_b)

    AllocationEngine._ensure_type_pair_row = recording
    try:
        engine._rebuild_pair_rows_for_types(frozenset(job_types))
    finally:
        AllocationEngine._ensure_type_pair_row = original

    assert observed, "rebuild made no pair-row calls"
    # The outer loop must visit affected types in sorted order, regardless of
    # the frozenset's hash-seeded iteration order.
    first_seen = list(dict.fromkeys(observed))
    assert first_seen == sorted(first_seen)


def test_rebuild_produces_same_rows_for_any_input_order(oracle):
    job_types = list(oracle.job_types.names)[:4]
    engine_a = _engine_with_types(oracle, job_types)
    engine_b = _engine_with_types(oracle, list(reversed(job_types)))

    engine_a._rebuild_pair_rows_for_types(frozenset(job_types))
    engine_b._rebuild_pair_rows_for_types(frozenset(reversed(job_types)))

    assert sorted(engine_a._type_pair_reps) == sorted(engine_b._type_pair_reps)
