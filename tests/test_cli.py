"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.core import available_policies


class TestParser:
    def test_policies_command_parses(self):
        args = build_parser().parse_args(["policies"])
        assert args.command == "policies"

    def test_simulate_requires_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate"])

    def test_cluster_spec_parsing(self):
        args = build_parser().parse_args(
            ["simulate", "--policy", "fifo", "--cluster", "v100=1,k80=3"]
        )
        assert args.cluster == {"v100": 1, "k80": 3}

    def test_invalid_cluster_spec_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--policy", "fifo", "--cluster", "v100"])

    def test_rates_parsing(self):
        args = build_parser().parse_args(["sweep", "--policies", "fifo", "--rates", "1,2.5,4"])
        assert args.rates == [1.0, 2.5, 4.0]


class TestCommands:
    def test_policies_lists_registry(self, capsys):
        assert main(["policies"]) == 0
        out = capsys.readouterr().out.splitlines()
        assert set(available_policies()) <= set(out)

    def test_simulate_continuous(self, capsys):
        code = main(
            [
                "simulate",
                "--policy",
                "max_min_fairness",
                "--num-jobs",
                "6",
                "--jobs-per-hour",
                "4",
                "--cluster",
                "v100=1,p100=1,k80=1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "average JCT" in out
        assert "completed jobs" in out and "6/6" in out

    def test_simulate_static_trace(self, capsys):
        code = main(
            [
                "simulate",
                "--policy",
                "makespan",
                "--num-jobs",
                "4",
                "--cluster",
                "v100=1,p100=1,k80=1",
            ]
        )
        assert code == 0
        assert "makespan" in capsys.readouterr().out

    def test_sweep(self, capsys):
        code = main(
            [
                "sweep",
                "--policies",
                "max_min_fairness,fifo",
                "--rates",
                "2",
                "--num-jobs",
                "5",
                "--cluster",
                "v100=1,p100=1,k80=1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "max_min_fairness" in out and "fifo" in out

    def test_sweep_with_type_aggregation(self, capsys):
        code = main(
            [
                "sweep",
                "--policies",
                "max_min_fairness",
                "--rates",
                "2",
                "--num-jobs",
                "5",
                "--cluster",
                "v100=1,p100=1,k80=1",
                "--aggregation",
                "type",
            ]
        )
        assert code == 0
        assert "max_min_fairness" in capsys.readouterr().out

    def test_aggregation_rejected_for_unsupported_policy(self, capsys):
        code = main(
            [
                "online",
                "--policy",
                "finish_time_fairness",
                "--num-jobs",
                "4",
                "--aggregation",
                "type",
            ]
        )
        assert code == 2
        assert "aggregation" in capsys.readouterr().err

    def test_policies_help_documents_aggregation(self, capsys):
        assert main(["policies"]) == 0
        out = capsys.readouterr().out
        assert "--aggregation" in out
        assert "max_total_throughput" in out


class TestSweepParity:
    def test_sweep_accepts_round_duration_and_mode(self):
        args = build_parser().parse_args(
            ["sweep", "--policies", "fifo", "--round-duration", "600", "--mode", "ideal"]
        )
        assert args.round_duration == 600.0
        assert args.mode == "ideal"

    def test_sweep_round_duration_changes_results(self, capsys):
        base = ["sweep", "--policies", "fifo", "--rates", "4", "--num-jobs", "5",
                "--cluster", "v100=1,p100=1,k80=1"]
        assert main(base) == 0
        default_out = capsys.readouterr().out
        assert main(base + ["--round-duration", "7200"]) == 0
        coarse_out = capsys.readouterr().out
        assert default_out != coarse_out

    def test_policy_help_documents_spec_strings(self):
        parser = build_parser()
        help_text = parser.format_help()
        for sub in parser._subparsers._group_actions[0].choices.values():
            help_text += sub.format_help()
        assert "max_min_fairness+ss" in help_text
        assert "fifo@agnostic" in help_text

    def test_policies_command_documents_spec_strings(self, capsys):
        assert main(["policies"]) == 0
        out = capsys.readouterr().out
        assert "+ss" in out and "@agnostic" in out

    def test_spec_string_policy_accepted(self, capsys):
        code = main(
            ["simulate", "--policy", "max_min_fairness+ss", "--num-jobs", "4",
             "--cluster", "v100=1,p100=1,k80=1"]
        )
        assert code == 0
        assert "+SS" in capsys.readouterr().out


class TestOnlineCommand:
    def test_online_events_parse(self):
        args = build_parser().parse_args(
            ["online", "--policy", "fifo", "--cancel", "3@7200",
             "--resize", "v100=+2,k80=-1@3600", "--swap-policy", "fifo@100"]
        )
        assert args.cancel == [(3, 7200.0)]
        assert args.resize == [({"v100": 2, "k80": -1}, 3600.0)]
        assert args.swap_policy == [("fifo", 100.0)]

    def test_online_run_with_events(self, capsys):
        code = main(
            [
                "online",
                "--policy", "max_min_fairness",
                "--num-jobs", "6",
                "--jobs-per-hour", "6",
                "--cluster", "v100=1,p100=1,k80=1",
                "--cancel", "1@7200",
                "--resize", "v100=+1@10800",
                "--swap-policy", "fifo@21600",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "cancel job 1" in out
        assert "resize" in out and "v100=2" in out
        assert "swap policy" in out
        assert "cancelled jobs" in out

    def test_online_bad_event_values_are_usage_errors(self, capsys):
        import pytest as _pytest

        for bad in (
            ["--cancel", "oops"],
            ["--cancel", "1@soon"],
            ["--resize", "v100=1.5@3600"],
            ["--resize", "v100@3600"],
            ["--swap-policy", "fifo"],
        ):
            with _pytest.raises(SystemExit):
                main(["online", "--policy", "fifo", "--num-jobs", "4"] + bad)
            capsys.readouterr()

    def test_online_cancel_after_completion_is_skipped(self, capsys):
        code = main(
            [
                "online",
                "--policy", "fifo",
                "--num-jobs", "3",
                "--jobs-per-hour", "6",
                "--cluster", "v100=1,p100=1,k80=1",
                "--cancel", "0@2000000000",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "cancel job 0 skipped" in out
