"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.core import available_policies


class TestParser:
    def test_policies_command_parses(self):
        args = build_parser().parse_args(["policies"])
        assert args.command == "policies"

    def test_simulate_requires_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate"])

    def test_cluster_spec_parsing(self):
        args = build_parser().parse_args(
            ["simulate", "--policy", "fifo", "--cluster", "v100=1,k80=3"]
        )
        assert args.cluster == {"v100": 1, "k80": 3}

    def test_invalid_cluster_spec_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--policy", "fifo", "--cluster", "v100"])

    def test_rates_parsing(self):
        args = build_parser().parse_args(["sweep", "--policies", "fifo", "--rates", "1,2.5,4"])
        assert args.rates == [1.0, 2.5, 4.0]


class TestCommands:
    def test_policies_lists_registry(self, capsys):
        assert main(["policies"]) == 0
        out = capsys.readouterr().out.splitlines()
        assert set(available_policies()) <= set(out)

    def test_simulate_continuous(self, capsys):
        code = main(
            [
                "simulate",
                "--policy",
                "max_min_fairness",
                "--num-jobs",
                "6",
                "--jobs-per-hour",
                "4",
                "--cluster",
                "v100=1,p100=1,k80=1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "average JCT" in out
        assert "completed jobs" in out and "6/6" in out

    def test_simulate_static_trace(self, capsys):
        code = main(
            [
                "simulate",
                "--policy",
                "makespan",
                "--num-jobs",
                "4",
                "--cluster",
                "v100=1,p100=1,k80=1",
            ]
        )
        assert code == 0
        assert "makespan" in capsys.readouterr().out

    def test_sweep(self, capsys):
        code = main(
            [
                "sweep",
                "--policies",
                "max_min_fairness,fifo",
                "--rates",
                "2",
                "--num-jobs",
                "5",
                "--cluster",
                "v100=1,p100=1,k80=1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "max_min_fairness" in out and "fifo" in out
