"""Tests for the experiment harness."""

import pytest

from repro.cluster import ClusterSpec
from repro.exceptions import ConfigurationError
from repro.harness import (
    LoadSweepPoint,
    measure_policy_runtime,
    run_load_sweep,
    run_policy_on_trace,
    steady_state_job_ids,
)
from repro.simulator import SimulatorConfig
from repro.workloads import ThroughputOracle, TraceGenerator


@pytest.fixture(scope="module")
def oracle():
    return ThroughputOracle()


@pytest.fixture(scope="module")
def spec():
    return ClusterSpec.from_counts({"v100": 2, "p100": 2, "k80": 2})


class TestSteadyState:
    def test_window_excludes_warmup_and_cooldown(self, oracle):
        trace = TraceGenerator(oracle).generate_continuous(num_jobs=10, jobs_per_hour=5, seed=0)
        window = steady_state_job_ids(trace, warmup_fraction=0.2, cooldown_fraction=0.2)
        assert window == [2, 3, 4, 5, 6, 7]

    def test_degenerate_window_falls_back_to_all_jobs(self, oracle):
        trace = TraceGenerator(oracle).generate_continuous(num_jobs=2, jobs_per_hour=5, seed=0)
        window = steady_state_job_ids(trace, warmup_fraction=0.5, cooldown_fraction=0.5)
        assert window == [0, 1]


class TestRunPolicyOnTrace:
    def test_accepts_policy_name_or_object(self, oracle, spec):
        trace = TraceGenerator(oracle).generate_continuous(num_jobs=6, jobs_per_hour=4, seed=1)
        by_name = run_policy_on_trace("max_min_fairness", trace, spec, oracle=oracle)
        assert by_name.completion_rate() == 1.0

        from repro.core import MaxMinFairnessPolicy

        by_object = run_policy_on_trace(MaxMinFairnessPolicy(), trace, spec, oracle=oracle)
        assert by_object.average_jct_hours() == pytest.approx(by_name.average_jct_hours())


class TestLoadSweep:
    def test_higher_load_does_not_reduce_jct(self, oracle, spec):
        points = run_load_sweep(
            "max_min_fairness",
            jobs_per_hour_values=[1.0, 8.0],
            cluster_spec=spec,
            num_jobs=14,
            seeds=(0,),
            oracle=oracle,
        )
        assert len(points) == 2
        assert all(isinstance(point, LoadSweepPoint) for point in points)
        assert points[1].mean >= points[0].mean * 0.8

    def test_multiple_seeds_produce_std(self, oracle, spec):
        points = run_load_sweep(
            "max_min_fairness",
            jobs_per_hour_values=[3.0],
            cluster_spec=spec,
            num_jobs=10,
            seeds=(0, 1),
            oracle=oracle,
        )
        assert len(points[0].values) == 2
        assert points[0].std >= 0.0

    def test_invalid_metric_rejected(self, oracle, spec):
        with pytest.raises(ConfigurationError):
            run_load_sweep(
                "max_min_fairness",
                jobs_per_hour_values=[1.0],
                cluster_spec=spec,
                metric="median_jct",
                oracle=oracle,
            )

    def test_ftf_metric_supported(self, oracle, spec):
        points = run_load_sweep(
            "finish_time_fairness",
            jobs_per_hour_values=[2.0],
            cluster_spec=spec,
            num_jobs=8,
            seeds=(0,),
            oracle=oracle,
            metric="average_finish_time_fairness",
        )
        assert points[0].mean > 0


class TestPolicyRuntime:
    def test_runtime_measured_for_each_size(self, oracle):
        runtimes = measure_policy_runtime(
            "max_min_fairness", num_jobs_values=[8, 16], oracle=oracle
        )
        assert set(runtimes) == {8, 16}
        assert all(value > 0 for value in runtimes.values())

    def test_space_sharing_override(self, oracle):
        runtimes = measure_policy_runtime(
            "max_min_fairness_ss", num_jobs_values=[8], oracle=oracle, space_sharing=True
        )
        assert runtimes[8] > 0
