"""Tests for the plain-text reporting helpers."""

import math

import pytest

from repro.harness import format_series, format_table, speedup, summarize_cdf


class TestFormatTable:
    def test_columns_aligned(self):
        text = format_table(["policy", "jct"], [["gavel", 3.4], ["las", 5.0]], title="Table 3")
        lines = text.splitlines()
        assert lines[0] == "Table 3"
        assert "policy" in lines[1] and "jct" in lines[1]
        assert len(lines) == 5

    def test_no_title(self):
        text = format_table(["a"], [[1]])
        assert text.splitlines()[0].startswith("a")


class TestFormatSeries:
    def test_pairs_rendered(self):
        text = format_series("Gavel", [1, 2], [10.0, 20.0], x_label="rate", y_label="jct")
        assert "Gavel" in text
        assert "rate" in text and "jct" in text
        assert len(text.splitlines()) == 3


class TestSummarizeCdf:
    def test_percentiles(self):
        summary = summarize_cdf(list(range(1, 101)))
        assert summary["p50"] == pytest.approx(50.5)
        assert summary["p99"] == pytest.approx(99.01)

    def test_empty_values(self):
        summary = summarize_cdf([])
        assert math.isnan(summary["p50"])


class TestSpeedup:
    def test_ratio(self):
        assert speedup(10.0, 2.0) == pytest.approx(5.0)

    def test_zero_improved(self):
        assert speedup(10.0, 0.0) == float("inf")
