"""Unit tests for the equivalence-harness building blocks.

The registry-wide churn suites exercise these helpers end to end; here each
one is pinned down in isolation: the churn generator's determinism and
invariants, the objective evaluator's optimality ordering, the water-filling
level profile's shape, and the aggregation-equivalence assertion's pass and
fail behavior.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import ClusterSpec
from repro.core import AllocationEngine, PolicyProblem, make_policy
from repro.core.aggregation import aggregation_key
from repro.core.session import RebuildSession
from repro.harness import (
    assert_aggregation_equivalent,
    churn_events,
    policy_objective_value,
    water_filling_level_profile,
)
from repro.workloads import ThroughputOracle


@pytest.fixture(scope="module")
def oracle():
    return ThroughputOracle()


@pytest.fixture(scope="module")
def cluster(oracle):
    return ClusterSpec.from_counts(
        {name: 2 for name in oracle.registry.names}, registry=oracle.registry
    )


def build_problem(oracle, cluster, policy, jobs):
    engine = AllocationEngine(oracle, space_sharing=policy.space_sharing)
    for job in jobs.values():
        engine.add_job(job)
    return PolicyProblem(
        jobs=dict(jobs),
        throughputs=engine.matrix(),
        cluster_spec=cluster,
        steps_remaining={job_id: job.total_steps for job_id, job in jobs.items()},
        time_elapsed={job_id: 0.0 for job_id in jobs},
        current_time=0.0,
    )


def initial_jobs(oracle, count=4, unique_groups=False):
    jobs = {}
    for action, job in churn_events(oracle, num_initial=12, num_events=0):
        assert action == "add"
        if unique_groups and any(
            aggregation_key(job) == aggregation_key(other) for other in jobs.values()
        ):
            continue
        jobs[job.job_id] = job
        if len(jobs) == count:
            break
    assert len(jobs) == count
    return jobs


class TestChurnEvents:
    def test_deterministic_for_a_seed(self, oracle):
        first = churn_events(oracle, num_initial=6, num_events=8, seed=3)
        second = churn_events(oracle, num_initial=6, num_events=8, seed=3)
        assert [(action, job.job_id) for action, job in first] == [
            (action, job.job_id) for action, job in second
        ]

    def test_removals_target_previously_added_jobs(self, oracle):
        active = set()
        for action, job in churn_events(oracle, num_initial=6, num_events=10, seed=5):
            if action == "add":
                assert job.job_id not in active
                active.add(job.job_id)
            else:
                assert job.job_id in active
                active.remove(job.job_id)

    def test_entities_round_robin(self, oracle):
        events = churn_events(oracle, num_initial=6, num_events=0, num_entities=3)
        assert {job.entity_id for _action, job in events} == {0, 1, 2}


class TestPolicyObjectiveValue:
    def test_optimum_dominates_foreign_allocation(self, oracle, cluster):
        spec = "max_min_fairness"
        policy = make_policy(spec)
        problem = build_problem(oracle, cluster, policy, initial_jobs(oracle))
        optimal = RebuildSession(policy, problem).solve(problem)
        foreign_policy = make_policy("fifo")
        foreign = RebuildSession(foreign_policy, problem).solve(problem)
        best = policy_objective_value(spec, policy, problem, optimal)
        other = policy_objective_value(spec, policy, problem, foreign)
        assert best is not None and other is not None
        assert best >= other - 1e-6

    def test_combinatorial_baseline_has_no_objective(self, oracle, cluster):
        policy = make_policy("gandiva")
        problem = build_problem(oracle, cluster, policy, initial_jobs(oracle))
        allocation = RebuildSession(policy, problem).solve(problem)
        assert policy_objective_value("gandiva", policy, problem, allocation) is None


class TestWaterFillingLevelProfile:
    def test_profile_is_sorted_and_per_job(self, oracle, cluster):
        policy = make_policy("max_min_fairness_water_filling")
        problem = build_problem(oracle, cluster, policy, initial_jobs(oracle))
        allocation = RebuildSession(policy, problem).solve(problem)
        profile = water_filling_level_profile(policy, problem, allocation)
        assert profile.shape == (len(problem.jobs),)
        assert np.all(np.diff(profile) >= 0.0)
        assert np.all(profile >= -1e-9)


class TestAssertAggregationEquivalent:
    def test_identical_allocations_pass(self, oracle, cluster):
        spec = "max_min_fairness"
        policy = make_policy(spec)
        jobs = initial_jobs(oracle, unique_groups=True)
        problem = build_problem(oracle, cluster, policy, jobs)
        allocation = RebuildSession(policy, problem).solve(problem)
        assert_aggregation_equivalent(spec, policy, problem, allocation, allocation)

    def test_objective_mismatch_raises(self, oracle, cluster):
        spec = "max_min_fairness"
        policy = make_policy(spec)
        problem = build_problem(oracle, cluster, policy, initial_jobs(oracle))
        optimal = RebuildSession(policy, problem).solve(problem)
        foreign = RebuildSession(make_policy("fifo"), problem).solve(problem)
        if policy_objective_value(spec, policy, problem, foreign) == pytest.approx(
            policy_objective_value(spec, policy, problem, optimal)
        ):
            pytest.skip("fifo accidentally optimal on this trace")
        with pytest.raises(AssertionError):
            assert_aggregation_equivalent(spec, policy, problem, foreign, optimal)
